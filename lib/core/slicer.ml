(** The adjusted backward slicing (Sec. V-A): starting at a sink API call,
    taint the security-relevant parameter and scan method bodies backwards,
    crossing method boundaries through the bytecode searches of Sec. IV and
    recording every visited statement and inter-procedural relationship into
    the SSG.

    Taints cover locals, instance fields (tainting the class object along
    with the field, so aliases and method boundaries are survived), Intent
    extras (keyed like fields) and static fields (a global set).  Contained
    methods — constructors writing tainted fields, and calls whose return
    value is tainted — are analysed by recursive sub-slices whose residual
    taints are mapped back to the call site.

    Caller queries go through the {!Resolver} broker, which classifies the
    callee, runs the right Sec. IV search and returns uniform caller
    records; the two traversals here ({!method_reachable}'s recursion and
    {!continue_to_callers}) are generic over those records.  All state and
    budget accounting lives in the {!Context}. *)

open Ir
module Sinks = Framework.Sinks

(* ------------------------------------------------------------------ *)
(* Taint sets                                                           *)

type taints = {
  locals : (string, unit) Hashtbl.t;
  fields : (string, (string, Jsig.field) Hashtbl.t) Hashtbl.t;
      (** object id -> (field signature -> field); inner tables are removed
          eagerly when they empty, so membership of the outer key means "has
          tainted fields" *)
  intents : (string, (string, unit) Hashtbl.t) Hashtbl.t;
      (** object id -> set of tainted extra keys; same eager-removal rule *)
  mutable settled : residual_acc list;
      (** residuals settled during the scan, at identity statements *)
}

and residual_acc = R_acc_param of int | R_acc_this

let fresh_taints () =
  { locals = Hashtbl.create 8; fields = Hashtbl.create 4;
    intents = Hashtbl.create 2; settled = [] }

let taint_local t id = Hashtbl.replace t.locals id ()
let untaint_local t id = Hashtbl.remove t.locals id
let local_tainted t id = Hashtbl.mem t.locals id

let taint_field t obj (f : Jsig.field) =
  let inner =
    match Hashtbl.find_opt t.fields obj with
    | Some inner -> inner
    | None ->
      let inner = Hashtbl.create 4 in
      Hashtbl.replace t.fields obj inner;
      inner
  in
  Hashtbl.replace inner (Jsig.field_to_string f) f;
  (* the paper also taints the class object itself *)
  taint_local t obj

let untaint_field t obj (f : Jsig.field) =
  match Hashtbl.find_opt t.fields obj with
  | None -> ()
  | Some inner ->
    Hashtbl.remove inner (Jsig.field_to_string f);
    if Hashtbl.length inner = 0 then Hashtbl.remove t.fields obj

let field_tainted t obj (f : Jsig.field) =
  match Hashtbl.find_opt t.fields obj with
  | None -> false
  | Some inner -> Hashtbl.mem inner (Jsig.field_to_string f)

let has_field_taints t obj = Hashtbl.mem t.fields obj

(** Fields tainted on a given object local — O(own fields). *)
let fields_of t obj =
  match Hashtbl.find_opt t.fields obj with
  | None -> []
  | Some inner -> Hashtbl.fold (fun _ f acc -> f :: acc) inner []

let taint_intent t obj key =
  let inner =
    match Hashtbl.find_opt t.intents obj with
    | Some inner -> inner
    | None ->
      let inner = Hashtbl.create 2 in
      Hashtbl.replace t.intents obj inner;
      inner
  in
  Hashtbl.replace inner key ();
  (* track the carrying object as well, mirroring the field rule *)
  Hashtbl.replace t.locals obj ()

let untaint_intent t obj key =
  match Hashtbl.find_opt t.intents obj with
  | None -> ()
  | Some inner ->
    Hashtbl.remove inner key;
    if Hashtbl.length inner = 0 then Hashtbl.remove t.intents obj

let intent_tainted t obj key =
  match Hashtbl.find_opt t.intents obj with
  | None -> false
  | Some inner -> Hashtbl.mem inner key

let has_intent_taints t obj = Hashtbl.mem t.intents obj

(** Extra keys tainted on a given Intent local — O(own keys). *)
let intent_keys_of t obj =
  match Hashtbl.find_opt t.intents obj with
  | None -> []
  | Some inner -> Hashtbl.fold (fun k () acc -> k :: acc) inner []

let has_obj_taints t obj = has_field_taints t obj || has_intent_taints t obj

let is_empty t =
  Hashtbl.length t.locals = 0 && Hashtbl.length t.fields = 0
  && Hashtbl.length t.intents = 0

(** Transfer all taints attached to alias [dst] onto [src] (processing a
    backward copy [dst := src]). *)
let transfer_alias t ~dst ~src =
  if local_tainted t dst then begin
    untaint_local t dst;
    taint_local t src
  end;
  List.iter (fun f -> untaint_field t dst f; taint_field t src f) (fields_of t dst);
  List.iter
    (fun k -> untaint_intent t dst k; taint_intent t src k)
    (intent_keys_of t dst)

(* ------------------------------------------------------------------ *)
(* Residual taints at method entry                                      *)

type residual =
  | R_param of int
  | R_param_field of int * Jsig.field
  | R_this
  | R_this_field of Jsig.field
  | R_intent of int * string
      (** Intent extra: parameter index ([-1] = the component's launching
          Intent, from [getIntent()]) and extra key *)

let getintent_marker = "<launching-intent>"

let record (ctx : Context.t) meth idx stmt =
  ignore (Ssg.add_node ctx.ssg ~meth ~stmt_idx:idx ~stmt)

(** Quick backward lookup of a string constant for [v] (used to resolve
    Intent extra keys at [getStringExtra]/[putExtra] sites). *)
let resolve_string_const body idx (v : Value.t) =
  match v with
  | Value.Const (Value.Str_c s) -> Some s
  | Value.Const _ -> None
  | Value.Local l ->
    let rec back i =
      if i < 0 then None
      else
        match body.(i) with
        | Stmt.Assign (d, Expr.Imm (Value.Const (Value.Str_c s)))
          when Value.local_equal d l -> Some s
        | _ -> back (i - 1)
    in
    back (idx - 1)

let is_system_class (ctx : Context.t) cls =
  match Program.find_class ctx.program cls with
  | Some c -> c.Jclass.is_system
  | None -> true

(* ------------------------------------------------------------------ *)
(* Backward scan of one method body                                     *)

(** Scan [meth]'s body backward from [from_idx], transforming [t] in place
    and recording SSG nodes.  Returns the residual taints at method entry.
    [path] carries the methods on the current backtracking chain for loop
    detection; [cdepth] bounds contained-method recursion. *)
let rec scan (ctx : Context.t) ~path ~cdepth (meth : Jsig.meth) body ~from_idx t =
  let idx = ref (min from_idx (Array.length body - 1)) in
  while !idx >= 0 do
    let stmt = body.(!idx) in
    (match stmt with
     | Stmt.Assign (l, Expr.Param i) when local_tainted t l.Value.id ->
       (* identity statement: the tainted local IS the parameter — settle it
          as a residual for the caller mapping *)
       untaint_local t l.Value.id;
       record ctx meth !idx stmt;
       Ssg.record_taint ctx.ssg ~meth l.Value.id;
       t.settled <- R_acc_param i :: t.settled
     | Stmt.Assign (l, Expr.This) when local_tainted t l.Value.id ->
       untaint_local t l.Value.id;
       record ctx meth !idx stmt;
       Ssg.record_taint ctx.ssg ~meth l.Value.id;
       t.settled <- R_acc_this :: t.settled
     | Stmt.Assign (l, e) when local_tainted t l.Value.id ->
       untaint_local t l.Value.id;
       record ctx meth !idx stmt;
       Ssg.record_taint ctx.ssg ~meth l.Value.id;
       process_def ctx ~path ~cdepth meth body !idx t l e
     | Stmt.Assign (l, Expr.Imm (Value.Local x))
       when has_obj_taints t l.Value.id ->
       (* alias copy: move attached field / intent taints to the source *)
       record ctx meth !idx stmt;
       transfer_alias t ~dst:l.Value.id ~src:x.Value.id
     | Stmt.Assign (l, Expr.Cast (_, Value.Local x))
       when has_obj_taints t l.Value.id ->
       record ctx meth !idx stmt;
       transfer_alias t ~dst:l.Value.id ~src:x.Value.id
     | Stmt.Instance_put (o, f, v) when field_tainted t o.Value.id f ->
       record ctx meth !idx stmt;
       untaint_field t o.Value.id f;
       (* drop the object taint when no other tainted field remains *)
       if not (has_obj_taints t o.Value.id) then untaint_local t o.Value.id;
       taint_value t v
     | Stmt.Static_put (f, v)
       when List.exists (Jsig.field_equal f) ctx.ssg.Ssg.global_static_taints ->
       record ctx meth !idx stmt;
       Ssg.remove_global_static_taint ctx.ssg f;
       taint_value t v
     | Stmt.Array_put (a, _i, v) when local_tainted t a.Value.id ->
       (* arrays are handled like fields: the store feeds the tainted array *)
       record ctx meth !idx stmt;
       taint_value t v
     | Stmt.Invoke iv ->
       process_plain_invoke ctx ~path ~cdepth meth body !idx t iv
     | Stmt.Assign _ | Stmt.Instance_put _ | Stmt.Static_put _
     | Stmt.Array_put _ | Stmt.Return _ | Stmt.If _ | Stmt.Goto _
     | Stmt.Throw _ | Stmt.Nop -> ());
    decr idx
  done;
  residuals_of ctx meth t

and taint_value t = function
  | Value.Local l -> taint_local t l.Value.id
  | Value.Const _ -> ()

(** Transfer for a tainted definition [l := e]. *)
and process_def (ctx : Context.t) ~path ~cdepth meth body idx t l e =
  match e with
  | Expr.Imm (Value.Local x) -> taint_local t x.Value.id
  | Expr.Imm (Value.Const _) -> ()
  | Expr.Binop (_, a, b) -> taint_value t a; taint_value t b
  | Expr.Cast (_, v) -> taint_value t v
  | Expr.Phi ls -> List.iter (fun x -> taint_local t x.Value.id) ls
  | Expr.New _ | Expr.New_array _ -> ()  (* points-to origin: a leaf *)
  | Expr.Length v -> taint_value t v
  | Expr.Array_get (a, _) -> taint_local t a.Value.id
  | Expr.Instance_get (o, f) -> taint_field t o.Value.id f
  | Expr.Static_get f ->
    Ssg.add_global_static_taint ctx.ssg f;
    locate_static_writers ctx ~path ~cdepth f
  | Expr.Param _ | Expr.This | Expr.Caught_exception -> ()
  | Expr.Invoke iv -> process_result_invoke ctx ~path ~cdepth meth body idx t l iv

(** A call whose result is tainted ([l] is the result local). *)
and process_result_invoke (ctx : Context.t) ~path ~cdepth meth body idx t l
    (iv : Expr.invoke) =
  let callee = iv.callee in
  if Jsig.meth_equal callee Framework.Api.intent_get_string_extra then begin
    match iv.base, resolve_string_const body idx (List.nth iv.args 0) with
    | Some b, Some key -> taint_intent t b.Value.id key
    | Some b, None -> taint_local t b.Value.id
    | None, _ -> ()
  end
  else if Jsig.meth_equal callee Framework.Api.activity_get_intent then
    (* the result is the component's launching Intent: re-key any extra-key
       taints of the result local onto the marker so they surface as
       R_intent (-1, _) residuals *)
    List.iter
      (fun key ->
         untaint_intent t l.Value.id key;
         taint_intent t getintent_marker key)
      (intent_keys_of t l.Value.id)
  else if is_system_class ctx callee.Jsig.cls then begin
    (* generic framework model: result depends on receiver and arguments *)
    (match iv.base with Some b -> taint_local t b.Value.id | None -> ());
    List.iter (taint_value t) iv.args
  end
  else begin
    (* contained app method: trace its return values by sub-slice *)
    match Program.find_method ctx.program callee with
    | None | Some { Jmethod.body = None; _ } ->
      (match iv.base with Some b -> taint_local t b.Value.id | None -> ());
      List.iter (taint_value t) iv.args
    | Some callee_m ->
      if cdepth >= ctx.budget.Context.max_contained_depth then ()
      else if Loopdetect.on_path path callee then
        Loopdetect.record ctx.loops Loopdetect.Inner_backward
      else begin
        Ssg.add_edge ctx.ssg
          (Ssg.Contained { caller = meth; site = idx; callee });
        let cbody = Option.get callee_m.Jmethod.body in
        let ct = fresh_taints () in
        Array.iter
          (fun s ->
             match s with
             | Stmt.Return (Some (Value.Local l)) -> taint_local ct l.Value.id
             | _ -> ())
          cbody;
        let res =
          scan ctx ~path:(callee :: path) ~cdepth:(cdepth + 1) callee cbody
            ~from_idx:(Array.length cbody - 1) ct
        in
        apply_residuals_at_site t iv res
      end
  end

(** A plain (result-less) invocation: constructor field mapping, Intent
    [putExtra], or a contained call touching tainted object fields. *)
and process_plain_invoke (ctx : Context.t) ~path ~cdepth meth _body idx t
    (iv : Expr.invoke) =
  let callee = iv.callee in
  match iv.base with
  | Some b
    when Jsig.meth_equal callee Framework.Api.intent_put_extra
      || (String.equal callee.Jsig.name "putExtra"
          && String.equal callee.Jsig.cls "android.content.Intent") ->
    (match iv.args with
     | [ k; v ] ->
       (match resolve_string_const _body idx k with
        | Some key when intent_tainted t b.Value.id key ->
          record ctx meth idx (Stmt.Invoke iv);
          untaint_intent t b.Value.id key;
          taint_value t v
        | Some _ | None -> ())
     | _ -> ())
  | Some b
    when has_obj_taints t b.Value.id
         && not (is_system_class ctx callee.Jsig.cls) ->
    (* contained method (constructor or setter) that may define the tainted
       fields of the receiver *)
    (match Program.find_method ctx.program callee with
     | None | Some { Jmethod.body = None; _ } -> ()
     | Some callee_m ->
       if cdepth >= ctx.budget.Context.max_contained_depth then ()
       else if Loopdetect.on_path path callee then
         Loopdetect.record ctx.loops Loopdetect.Inner_backward
       else begin
         record ctx meth idx (Stmt.Invoke iv);
         Ssg.add_edge ctx.ssg (Ssg.Contained { caller = meth; site = idx; callee });
         let cbody = Option.get callee_m.Jmethod.body in
         let ct = fresh_taints () in
         (match Jmethod.this_local callee_m with
          | Some this_l ->
            List.iter (fun f -> taint_field ct this_l.Value.id f)
              (fields_of t b.Value.id)
          | None -> ());
         let res =
           scan ctx ~path:(callee :: path) ~cdepth:(cdepth + 1) callee cbody
             ~from_idx:(Array.length cbody - 1) ct
         in
         (* the callee resolved (or re-mapped) the fields it defines *)
         List.iter
           (fun f ->
              match
                List.find_opt
                  (function
                    | R_this_field f' -> Jsig.field_equal f f'
                    | _ -> false)
                  res
              with
              | Some _ -> ()  (* still unresolved inside callee: keep taint *)
              | None -> untaint_field t b.Value.id f)
           (fields_of t b.Value.id);
         apply_residuals_at_site t iv res
       end)
  | Some _ | None -> ()

(** Map a contained sub-slice's residuals back onto the call-site values. *)
and apply_residuals_at_site t (iv : Expr.invoke) res =
  List.iter
    (fun r ->
       match r with
       | R_param i ->
         (match List.nth_opt iv.args i with
          | Some v -> taint_value t v
          | None -> ())
       | R_param_field (i, f) ->
         (match List.nth_opt iv.args i with
          | Some (Value.Local l) -> taint_field t l.Value.id f
          | Some (Value.Const _) | None -> ())
       | R_this ->
         (match iv.base with Some b -> taint_local t b.Value.id | None -> ())
       | R_this_field f ->
         (match iv.base with Some b -> taint_field t b.Value.id f | None -> ())
       | R_intent (i, key) ->
         (match List.nth_opt iv.args i with
          | Some (Value.Local l) -> taint_intent t l.Value.id key
          | Some (Value.Const _) | None -> ()))
    res

(** Static-field search (Sec. V-A): capture the methods that write a newly
    tainted static field, so only matching contained methods are analysed;
    writers that are [<clinit>]s join the SSG's static track. *)
and locate_static_writers (ctx : Context.t) ~path ~cdepth f =
  ignore path;
  ignore cdepth;
  let hits =
    Bytesearch.Engine.run ctx.engine
      (Bytesearch.Query.static_field_access_sym (Sigformat.to_dex_field_sym f))
  in
  List.iter
    (fun (h : Bytesearch.Engine.hit) ->
       if Jsig.is_clinit h.owner then Ssg.add_static_track ctx.ssg h.owner)
    hits

(** Compute the residual taints once the scan reaches the method entry. *)
and residuals_of (ctx : Context.t) meth t =
  let m = Program.find_method ctx.program meth in
  match m with
  | None -> []
  | Some m ->
    let this_id =
      match Jmethod.this_local m with Some l -> Some l.Value.id | None -> None
    in
    let param_ids =
      List.mapi (fun i ty -> ignore ty; (i, Jmethod.param_local m i))
        m.Jmethod.msig.Jsig.params
      |> List.filter_map (fun (i, l) ->
          match l with Some l -> Some (i, l.Value.id) | None -> None)
    in
    let param_index id =
      List.find_opt (fun (_, pid) -> String.equal pid id) param_ids
      |> Option.map fst
    in
    let acc = ref [] in
    Hashtbl.iter
      (fun id () ->
         if Some id = this_id then acc := R_this :: !acc
         else
           match param_index id with
           | Some i -> acc := R_param i :: !acc
           | None -> ())
      t.locals;
    Hashtbl.iter
      (fun id inner ->
         if Some id = this_id then
           Hashtbl.iter (fun _ f -> acc := R_this_field f :: !acc) inner
         else
           match param_index id with
           | Some pi ->
             Hashtbl.iter (fun _ f -> acc := R_param_field (pi, f) :: !acc)
               inner
           | None -> ())
      t.fields;
    Hashtbl.iter
      (fun id inner ->
         if id = getintent_marker then
           Hashtbl.iter (fun k () -> acc := R_intent (-1, k) :: !acc) inner
         else
           match param_index id with
           | Some i ->
             Hashtbl.iter (fun k () -> acc := R_intent (i, k) :: !acc) inner
           | None -> ())
      t.intents;
    List.iter
      (fun r ->
         match r with
         | R_acc_param i ->
           if not (List.mem (R_param i) !acc) then acc := R_param i :: !acc
         | R_acc_this ->
           if not (List.mem R_this !acc) then acc := R_this :: !acc)
      t.settled;
    !acc

(* ------------------------------------------------------------------ *)
(* Inter-procedural backtracking                                        *)

type work = {
  w_meth : Jsig.meth;
  w_from : int;
  w_taints : taints;
  w_path : Jsig.meth list;
  w_depth : int;   (** [List.length w_path], carried to avoid recomputing *)
}

(** Memoized control-flow reachability of a method from registered entry
    points — this is both the tail of every empty-taint backtracking path and
    the paper's sink-API-call cache (Sec. IV-F).  Successful paths record
    their inter-procedural edges and entry methods into the SSG so the
    forward analysis can replay them.  [depth] is [List.length path], carried
    as an int. *)
let rec method_reachable (ctx : Context.t) ~depth path (m : Jsig.meth) =
  let key = Sym.id (Jsig.meth_sym m) in
  incr ctx.reach_total;
  match Hashtbl.find_opt ctx.reach_cache key with
  | Some r ->
    incr ctx.reach_cached;
    if r then note_entry_if_needed ctx m;
    r
  | None ->
    if Loopdetect.on_path path m then begin
      Loopdetect.record ctx.loops Loopdetect.Cross_backward;
      false
    end
    else if depth > ctx.budget.Context.max_depth then begin
      Context.exhaust ctx Context.Depth;
      false
    end
    else if Context.out_of_time ctx then false
    else begin
      let r = compute_reachable ctx ~depth:(depth + 1) (m :: path) m in
      (* don't memoize once the deadline fired: the recursion below may have
         been cut short, and the cache outlives this sink's slice *)
      if not (Context.deadline_hit ctx) then Hashtbl.replace ctx.reach_cache key r;
      r
    end

and note_entry_if_needed (ctx : Context.t) m =
  if Lifecycle_search.is_entry ctx.program ctx.manifest m then
    Ssg.add_entry ctx.ssg m

(** Generic reach-mode traversal: one resolution, then depth-first over the
    caller records, recording each record's edge on success. *)
and compute_reachable (ctx : Context.t) ~depth path (m : Jsig.meth) =
  let r = Resolver.callers ctx m in
  if r.Resolver.entry then Ssg.add_entry ctx.ssg m;
  r.Resolver.complete
  || List.exists
       (fun (c : Resolver.caller) ->
          let ok = method_reachable ctx ~depth path c.Resolver.c_meth in
          if ok then Ssg.add_edge ctx.ssg c.Resolver.c_edge;
          ok)
       r.Resolver.callers

let push (ctx : Context.t) queue (w : work) meth from taints =
  let work_ok = ctx.work_count < ctx.budget.Context.max_work in
  let depth_ok = w.w_depth <= ctx.budget.Context.max_depth in
  if work_ok && depth_ok then begin
    ctx.work_count <- ctx.work_count + 1;
    Queue.add
      { w_meth = meth; w_from = from; w_taints = taints;
        w_path = w.w_meth :: w.w_path; w_depth = w.w_depth + 1 }
      queue
  end
  else begin
    if not work_ok then Context.exhaust ctx Context.Work;
    if not depth_ok then Context.exhaust ctx Context.Depth
  end

(** Apply a caller record's taint mapping and enqueue the continuation. *)
let apply_bind (ctx : Context.t) queue (w : work) res (c : Resolver.caller) =
  match c.Resolver.c_bind with
  | Resolver.Bind_call { invoke; from } ->
    let t = fresh_taints () in
    List.iter
      (fun r ->
         match r with
         | R_param i ->
           (match List.nth_opt invoke.Expr.args i with
            | Some (Value.Local l) -> taint_local t l.Value.id
            | Some (Value.Const _) | None -> ())
         | R_param_field (i, f) ->
           (match List.nth_opt invoke.Expr.args i with
            | Some (Value.Local l) -> taint_field t l.Value.id f
            | Some (Value.Const _) | None -> ())
         | R_this ->
           (match invoke.Expr.base with
            | Some b -> taint_local t b.Value.id
            | None -> ())
         | R_this_field f ->
           (match invoke.Expr.base with
            | Some b -> taint_field t b.Value.id f
            | None -> ())
         | R_intent (i, key) ->
           (match List.nth_opt invoke.Expr.args i with
            | Some (Value.Local l) -> taint_intent t l.Value.id key
            | Some (Value.Const _) | None -> ()))
      res;
    push ctx queue w c.Resolver.c_meth from t
  | Resolver.Bind_intent { intent_local; from } ->
    let t = fresh_taints () in
    List.iter
      (function
        | R_intent (_, key) -> taint_intent t intent_local key
        | R_param _ | R_param_field _ | R_this | R_this_field _ -> ())
      res;
    push ctx queue w c.Resolver.c_meth from t
  | Resolver.Bind_fields ->
    (* earlier lifecycle handler: residual receiver fields onto its own
       [this], rescanned from the body end *)
    (match Program.find_method ctx.program c.Resolver.c_meth with
     | Some ({ Jmethod.body = Some body; _ } as pm) ->
       let t = fresh_taints () in
       (match Jmethod.this_local pm with
        | Some this_l ->
          List.iter
            (function
              | R_this_field f -> taint_field t this_l.Value.id f
              | _ -> ())
            res
        | None -> ());
       push ctx queue w c.Resolver.c_meth (Array.length body - 1) t
     | Some { Jmethod.body = None; _ } | None -> ())
  | Resolver.Bind_async { obj_local; ending } ->
    (* this-side residuals map onto the constructor object in the chain
       head; the whole head body is rescanned since fields may be written
       anywhere before the callback fires *)
    let this_fields =
      List.filter_map (function R_this_field f -> Some f | _ -> None) res
    in
    let this_res = List.exists (function R_this -> true | _ -> false) res in
    (match Program.find_method ctx.program c.Resolver.c_meth with
     | Some { Jmethod.body = Some body; _ } ->
       let t = fresh_taints () in
       List.iter (fun f -> taint_field t obj_local f) this_fields;
       if this_res then taint_local t obj_local;
       if not (is_empty t) then
         push ctx queue w c.Resolver.c_meth (Array.length body - 1) t
       else if method_reachable ctx ~depth:w.w_depth w.w_path c.Resolver.c_meth
       then ctx.ssg.Ssg.reachable <- true
     | Some { Jmethod.body = None; _ } | None -> ());
    (* parameter residuals map at an app-level ending call; a framework
       ending means the callee params are framework inputs *)
    (match ending with
     | Some (ending_in, ending_site, iv) ->
       let t = fresh_taints () in
       List.iter
         (fun r ->
            match r with
            | R_param i ->
              (match List.nth_opt iv.Expr.args i with
               | Some (Value.Local l) -> taint_local t l.Value.id
               | Some (Value.Const _) | None -> ())
            | R_param_field (i, f) ->
              (match List.nth_opt iv.Expr.args i with
               | Some (Value.Local l) -> taint_field t l.Value.id f
               | Some (Value.Const _) | None -> ())
            | R_this | R_this_field _ | R_intent _ -> ())
         res;
       if not (is_empty t) then push ctx queue w ending_in (ending_site - 1) t
     | None -> ())

(** Continue backtracking from the entry of [w.w_meth] given its residual
    taints: one broker resolution, then a generic iteration over the caller
    records — loop guard, edge, taint binding, push. *)
let continue_to_callers (ctx : Context.t) queue (w : work) res =
  let m = w.w_meth in
  if res = [] then begin
    (* dataflow fully resolved: only control-flow reachability remains *)
    if method_reachable ctx ~depth:w.w_depth w.w_path m then
      ctx.ssg.Ssg.reachable <- true
  end
  else begin
    let demand =
      { Resolver.has_intent =
          List.exists (function R_intent _ -> true | _ -> false) res;
        has_this = List.exists (function R_this -> true | _ -> false) res;
        this_fields =
          List.filter_map (function R_this_field f -> Some f | _ -> None) res }
    in
    let r = Resolver.callers ~demand ctx m in
    Log.debug (fun l ->
        l "entry of %s: %d residual taints, strategy %s"
          (Jsig.meth_to_string m) (List.length res)
          (Resolver.strategy_to_string r.Resolver.strategy));
    if r.Resolver.entry then Ssg.add_entry ctx.ssg m;
    if r.Resolver.complete then ctx.ssg.Ssg.reachable <- true;
    List.iter
      (fun (c : Resolver.caller) ->
         if Loopdetect.on_path w.w_path c.Resolver.c_meth then
           Loopdetect.record ctx.loops Loopdetect.Cross_backward
         else begin
           Ssg.add_edge ctx.ssg c.Resolver.c_edge;
           apply_bind ctx queue w res c
         end)
      r.Resolver.callers
  end

(** Resolve still-untainted static fields by adding their classes'
    [<clinit>] methods to the SSG's static track (off-path static
    initializers, Sec. V-A). *)
let add_off_path_clinits (ctx : Context.t) =
  List.iter
    (fun (f : Jsig.field) ->
       match Program.find_class ctx.program f.Jsig.fcls with
       | Some c ->
         (match Jclass.clinit c with
          | Some clinit -> Ssg.add_static_track ctx.ssg clinit.Jmethod.msig
          | None -> ())
       | None -> ())
    ctx.ssg.Ssg.global_static_taints

let m_slices = Obs.Metrics.counter "slice.sinks"
let m_partial = Obs.Metrics.counter "slice.partial"
let m_work = Obs.Metrics.histogram "slice.work_items"

let m_exhaustions =
  List.map
    (fun e ->
       (e, Obs.Metrics.counter
             ("budget.exhausted." ^ Context.exhaustion_to_string e)))
    [ Context.Work; Context.Depth; Context.Deadline ]

(** Slice one sink API call occurrence, producing its SSG, the typed budget
    outcome and the provenance ledger of the derivation. *)
let slice_full ~(shared : Context.shared) ?budget ~(sink : Sinks.t) ~sink_meth
    ~sink_site () =
  let span0 = Obs.Span.start () in
  let wall0 = Unix.gettimeofday () in
  let ssg = Ssg.create ~sink ~sink_meth ~sink_site in
  let ctx = Context.create ?budget shared ~ssg in
  let program = ctx.Context.program in
  (match Program.find_method program sink_meth with
   | Some { Jmethod.body = Some body; _ } when sink_site < Array.length body ->
     let stmt = body.(sink_site) in
     record ctx sink_meth sink_site stmt;
     let t = fresh_taints () in
     (match Stmt.invoke stmt with
      | Some iv ->
        (match List.nth_opt iv.Expr.args sink.Sinks.param_index with
         | Some (Value.Local l) -> taint_local t l.Value.id
         | Some (Value.Const _) | None -> ())
      | None -> ());
     let queue = Queue.create () in
     Queue.add
       { w_meth = sink_meth; w_from = sink_site - 1; w_taints = t;
         w_path = []; w_depth = 0 }
       queue;
     while not (Queue.is_empty queue) && not (Context.out_of_time ctx) do
       let w = Queue.pop queue in
       match Program.find_method program w.w_meth with
       | Some { Jmethod.body = Some body; _ } ->
         let res =
           scan ctx ~path:(w.w_meth :: w.w_path) ~cdepth:0 w.w_meth body
             ~from_idx:w.w_from w.w_taints
         in
         continue_to_callers ctx queue w res
       | Some { Jmethod.body = None; _ } | None -> ()
     done;
     add_off_path_clinits ctx
   | Some { Jmethod.body = None; _ } | Some _ | None -> ());
  let outcome = Context.outcome ctx in
  let wall_us = (Unix.gettimeofday () -. wall0) *. 1e6 in
  let prov = Provenance.fresh_of ctx ~wall_us in
  Obs.Metrics.incr m_slices;
  Obs.Metrics.observe m_work (float_of_int ctx.Context.work_count);
  let sink_name = Sym.to_string (Jsig.meth_sym sink_meth) in
  Obs.Flight.record ~kind:"span" ~name:"slice"
    ~attrs:[ ("sink", Obs.Span.Str sink_name);
             ("work", Obs.Span.Int ctx.Context.work_count);
             ("outcome", Obs.Span.Str (Context.outcome_to_string outcome)) ]
    ();
  (match outcome with
   | Context.Complete -> ()
   | Context.Partial exs ->
     Obs.Metrics.incr m_partial;
     List.iter
       (fun e ->
          match List.assoc_opt e m_exhaustions with
          | Some c -> Obs.Metrics.incr c
          | None -> ())
       exs;
     (* a truncated verdict is an anomaly: dump the flight ring so the
        post-mortem shows what the slice was doing when the budget ran out *)
     Obs.Flight.anomaly
       ~kind:(if List.mem Context.Deadline exs then "deadline" else "budget")
       ~name:"slice-partial"
       ~attrs:[ ("sink", Obs.Span.Str sink_name);
                ("work", Obs.Span.Int ctx.Context.work_count);
                ("outcome", Obs.Span.Str (Context.outcome_to_string outcome)) ]
       ());
  if Obs.Span.pending span0 then
    Obs.Span.emit ~cat:"slice" ~name:"sink"
      ~attrs:[ ("sink", Obs.Span.Str sink_name);
               ("work", Obs.Span.Int ctx.Context.work_count);
               ("outcome", Obs.Span.Str (Context.outcome_to_string outcome)) ]
      span0;
  (ssg, outcome, prov)

(** {!slice_full} without the ledger (compatibility surface for callers
    that only need the SSG and outcome). *)
let slice ~shared ?budget ~sink ~sink_meth ~sink_site () =
  let ssg, outcome, _prov =
    slice_full ~shared ?budget ~sink ~sink_meth ~sink_site ()
  in
  (ssg, outcome)
