(** IR statements.  The paper's SSG only needs to handle three statement
    families — DefinitionStmt (our [Assign] and the store forms), InvokeStmt
    and ReturnStmt — but the IR also carries control flow ([If] / [Goto]) so
    that generated apps have realistic bodies. *)

type t =
  | Assign of Value.local * Expr.t
  | Instance_put of Value.local * Jsig.field * Value.t  (** [obj.f = v] *)
  | Static_put of Jsig.field * Value.t                  (** [C.f = v] *)
  | Array_put of Value.local * Value.t * Value.t        (** [a[i] = v] *)
  | Invoke of Expr.invoke
  | Return of Value.t option
  | If of Expr.binop * Value.t * Value.t * int  (** conditional jump to index *)
  | Goto of int
  | Throw of Value.t
  | Nop

(** The local defined by the statement, if any. *)
let def = function
  | Assign (l, _) -> Some l
  | Instance_put _ | Static_put _ | Array_put _ | Invoke _ | Return _
  | If _ | Goto _ | Throw _ | Nop -> None

(** All values read by the statement. *)
let uses = function
  | Assign (_, e) -> Expr.uses e
  | Instance_put (o, _, v) -> [ Value.Local o; v ]
  | Static_put (_, v) -> [ v ]
  | Array_put (a, i, v) -> [ Value.Local a; i; v ]
  | Invoke iv -> Expr.uses (Expr.Invoke iv)
  | Return (Some v) -> [ v ]
  | Return None -> []
  | If (_, a, b, _) -> [ a; b ]
  | Goto _ | Nop -> []
  | Throw v -> [ v ]

(** The invoke expression embedded in the statement, if any. *)
let invoke = function
  | Assign (_, Expr.Invoke iv) -> Some iv
  | Invoke iv -> Some iv
  | Assign (_, _) | Instance_put _ | Static_put _ | Array_put _ | Return _
  | If _ | Goto _ | Throw _ | Nop -> None

let to_string = function
  | Assign (l, Expr.Param i) ->
    Printf.sprintf "%s := @parameter%d: %s" l.Value.id i
      (Types.to_string l.Value.ty)
  | Assign (l, Expr.This) ->
    Printf.sprintf "%s := @this: %s" l.Value.id (Types.to_string l.Value.ty)
  | Assign (l, e) -> Printf.sprintf "%s = %s" l.Value.id (Expr.to_string e)
  | Instance_put (o, f, v) ->
    Printf.sprintf "%s.%s = %s" o.Value.id (Jsig.field_to_string f)
      (Value.to_string v)
  | Static_put (f, v) ->
    Printf.sprintf "%s = %s" (Jsig.field_to_string f) (Value.to_string v)
  | Array_put (a, i, v) ->
    Printf.sprintf "%s[%s] = %s" a.Value.id (Value.to_string i)
      (Value.to_string v)
  | Invoke iv -> Expr.to_string (Expr.Invoke iv)
  | Return (Some v) -> "return " ^ Value.to_string v
  | Return None -> "return"
  | If (op, a, b, t) ->
    Printf.sprintf "if %s %s %s goto %d" (Value.to_string a)
      (Expr.binop_to_string op) (Value.to_string b) t
  | Goto t -> Printf.sprintf "goto %d" t
  | Throw v -> "throw " ^ Value.to_string v
  | Nop -> "nop"

let pp ppf s = Fmt.string ppf (to_string s)
