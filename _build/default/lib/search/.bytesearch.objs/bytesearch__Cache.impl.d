lib/search/cache.ml: Hashtbl Option Query
