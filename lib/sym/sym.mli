(** Hash-consed interned symbols (the "symbolized search core" substrate).

    A {!t} is an integer handle for a string interned exactly once per
    process: two symbols are equal iff their strings are equal, so equality
    and hashing are O(1) integer operations with no per-comparison
    allocation.  The search engine keys its postings and its command cache
    on symbols; the disassembler interns every class descriptor, method
    signature and field signature it renders, so the analysis hot loops
    never rebuild or re-hash signature strings.

    The table is domain-safe: {!intern} serializes writers behind a mutex,
    while {!to_string} is a lock-free read (the id → string store is a
    pre-sized spine of atomically published chunks, so a symbol received
    from another domain always resolves). *)

type t

(** Intern [s], returning its unique symbol.  O(1) amortized; takes the
    table lock. *)
val intern : string -> t

(** The symbol of [s] if it was already interned (no insertion). *)
val find : string -> t option

(** The interned string.  Lock-free; physically the same string for every
    call on the same symbol. *)
val to_string : t -> string

(** O(1) integer equality. *)
val equal : t -> t -> bool

(** Total order on symbol ids — interning order, NOT lexicographic.  Never
    use it for user-visible ordering (ids depend on scheduling when several
    domains intern concurrently). *)
val compare : t -> t -> int

(** O(1) integer hash. *)
val hash : t -> int

(** The raw id, a small dense non-negative int (usable as a table key). *)
val id : t -> int

(** The symbol with raw id [i].  [i] must be an id previously returned by
    {!id} (or below {!interned}); anything else makes {!to_string} raise. *)
val unsafe_of_id : int -> t

(** Number of symbols interned so far, process-wide. *)
val interned : unit -> int

(** The interned strings of every symbol so far, indexed by id.  Snapshot
    save writes this whole table; loading re-interns the strings in id
    order, which re-creates identical ids in a process whose table evolved
    the same way (and yields a remap table otherwise). *)
val dump : unit -> string array

(** [memo ~hash ~equal render] is a domain-safe memoized [fun x ->
    intern (render x)]: each distinct key renders (and allocates) its
    string exactly once, after which lookups cost one table probe.  Used to
    symbolize signature rendering ([Jsig.meth] → dexdump signature) in the
    query hot path. *)
val memo :
  ?size:int ->
  hash:('a -> int) ->
  equal:('a -> 'a -> bool) ->
  ('a -> string) ->
  'a ->
  t
