lib/manifest/lifecycle.mli: Component
