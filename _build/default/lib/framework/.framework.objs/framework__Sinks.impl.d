lib/framework/sinks.ml: Api Ir List String
