(** Classes: name, hierarchy links, fields and methods.

    [is_system] marks framework stub classes (the android / java / javax /
    org.apache namespaces): their methods have no analysable bodies and their
    bytecode is not part of the app dex, exactly like real framework
    classes. *)

type t = {
  name : string;            (** dotted fully-qualified name *)
  super : string option;    (** [None] only for java.lang.Object *)
  interfaces : string list;
  is_interface : bool;
  is_abstract : bool;
  is_system : bool;
  fields : Jsig.field list;
  methods : Jmethod.t list;
}

let make ?(super = Some "java.lang.Object") ?(interfaces = [])
    ?(is_interface = false) ?(is_abstract = false) ?(is_system = false)
    ?(fields = []) ?(methods = []) name =
  { name; super; interfaces; is_interface; is_abstract; is_system; fields;
    methods }

let find_method c ~name ~params =
  List.find_opt
    (fun (m : Jmethod.t) ->
       String.equal m.msig.Jsig.name name
       && List.length m.msig.Jsig.params = List.length params
       && List.for_all2 Types.equal m.msig.Jsig.params params)
    c.methods

let find_method_by_subsig c subsig =
  List.find_opt (fun m -> String.equal (Jmethod.sub_signature m) subsig)
    c.methods

let constructors c =
  List.filter (fun m -> Jmethod.is_constructor m) c.methods

let clinit c = List.find_opt Jmethod.is_clinit c.methods

(** Package prefix of the class name ("" for the default package). *)
let package c =
  match String.rindex_opt c.name '.' with
  | None -> ""
  | Some i -> String.sub c.name 0 i
