lib/ir/types.ml: Fmt Stdlib String
