(** The adjusted backward slicing (Sec. V-A): starting at a sink API call,
    taint the security-relevant parameter and scan method bodies backwards,
    crossing method boundaries through the bytecode searches of Sec. IV and
    recording every visited statement and inter-procedural relationship into
    the SSG.

    Taints cover locals, instance fields (tainting the class object along
    with the field, so aliases and method boundaries are survived), Intent
    extras (keyed like fields) and static fields (a global set).  Contained
    methods — constructors writing tainted fields, and calls whose return
    value is tainted — are analysed by recursive sub-slices whose residual
    taints are mapped back to the call site. *)

type config = {
  max_depth : int;            (** inter-procedural backtracking depth *)
  max_work : int;             (** total work items per sink *)
  max_contained_depth : int;  (** contained-method sub-slice recursion *)
}

val default_config : config

(** Slice one sink API call occurrence, producing its SSG.  The
    [reach_cache] (with its hit counters) is shared across the sinks of one
    app — it implements the sink-API-call caching of Sec. IV-F; [loops]
    accumulates the dead-loop statistics. *)
val slice :
  engine:Bytesearch.Engine.t ->
  manifest:Manifest.App_manifest.t ->
  loops:Loopdetect.stats ->
  reach_cache:(string, bool) Hashtbl.t ->
  reach_total:int ref ->
  reach_cached:int ref ->
  ?cfg:config ->
  sink:Framework.Sinks.t ->
  sink_meth:Ir.Jsig.meth ->
  sink_site:int ->
  unit ->
  Ssg.t
