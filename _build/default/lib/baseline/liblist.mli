(** Amandroid's liblist.txt: packages whose code the whole-app baseline skips
    by default.  The paper names Amazon, Tencent and Facebook packages among
    the 139 skipped popular libraries; this list mirrors the entries our
    corpora exercise plus a representative sample of the real file. *)

val default : string list

(** Is [cls] inside one of the skipped packages? *)
val skipped : ?packages:string list -> string -> bool
