lib/core/slicer.mli: Bytesearch Framework Hashtbl Ir Loopdetect Manifest Ssg
