examples/async_callbacks.ml: Appgen Backdroid Baseline Framework Ir List Printf
