(** Java-level types as they appear in Dalvik bytecode and in our Shimple-like
    IR.  Class names use the dotted Java notation ([java.lang.String]); the
    dex-descriptor rendering lives in {!module:Dex.Descriptor}. *)

type t =
  | Void
  | Boolean
  | Byte
  | Char
  | Short
  | Int
  | Long
  | Float
  | Double
  | Object of string  (** fully-qualified dotted class name *)
  | Array of t

let rec equal a b =
  match a, b with
  | Void, Void | Boolean, Boolean | Byte, Byte | Char, Char | Short, Short
  | Int, Int | Long, Long | Float, Float | Double, Double -> true
  | Object x, Object y -> String.equal x y
  | Array x, Array y -> equal x y
  | ( Void | Boolean | Byte | Char | Short | Int | Long | Float | Double
    | Object _ | Array _ ), _ -> false

let rec compare a b = Stdlib.compare (to_key a) (to_key b)

and to_key t =
  match t with
  | Void -> "V" | Boolean -> "Z" | Byte -> "B" | Char -> "C" | Short -> "S"
  | Int -> "I" | Long -> "J" | Float -> "F" | Double -> "D"
  | Object c -> "L" ^ c ^ ";"
  | Array e -> "[" ^ to_key e

let is_reference = function Object _ | Array _ -> true | _ -> false
let is_primitive t = not (is_reference t) && t <> Void

(** Element class of a reference type, unwrapping arrays; [None] for
    primitives. *)
let rec base_class = function
  | Object c -> Some c
  | Array e -> base_class e
  | Void | Boolean | Byte | Char | Short | Int | Long | Float | Double -> None

let rec to_string = function
  | Void -> "void"
  | Boolean -> "boolean"
  | Byte -> "byte"
  | Char -> "char"
  | Short -> "short"
  | Int -> "int"
  | Long -> "long"
  | Float -> "float"
  | Double -> "double"
  | Object c -> c
  | Array e -> to_string e ^ "[]"

(** Parse the Java source notation produced by {!to_string}. *)
let of_string s =
  let rec wrap n t = if n = 0 then t else wrap (n - 1) (Array t) in
  let rec count_arrays s n =
    let len = String.length s in
    if len >= 2 && String.sub s (len - 2) 2 = "[]" then
      count_arrays (String.sub s 0 (len - 2)) (n + 1)
    else s, n
  in
  let base, dims = count_arrays (String.trim s) 0 in
  let t =
    match base with
    | "void" -> Void
    | "boolean" -> Boolean
    | "byte" -> Byte
    | "char" -> Char
    | "short" -> Short
    | "int" -> Int
    | "long" -> Long
    | "float" -> Float
    | "double" -> Double
    | c -> Object c
  in
  wrap dims t

let pp ppf t = Fmt.string ppf (to_string t)

(* Convenience constructors for frequently used reference types. *)
let object_ = Object "java.lang.Object"
let string_ = Object "java.lang.String"
let intent = Object "android.content.Intent"
let runnable = Object "java.lang.Runnable"
