(** The CLI's analyze output as reusable strings (no trailing newline on
    the line functions).  The one-shot CLI and the daemon both print
    through these, which is what makes served reports byte-identical to
    one-shot reports. *)

(** ["analyzed <app> in <t>s: <n> sink calls"]. *)
val analyzed_line :
  app_name:string -> seconds:float -> Backdroid.Driver.result -> string

(** ["  [<verdict>] <sink> at <meth>:<site> reachable=<b> fact=<f>"] plus
    a budget-exhaustion marker for partial slices. *)
val report_line : Backdroid.Driver.sink_report -> string

val report_lines : Backdroid.Driver.result -> string list

(** ["stats: <n> searches (...), ..."]. *)
val stats_line : Backdroid.Driver.result -> string

(** The full analyze transcript: header, one line per report, stats —
    each newline-terminated. *)
val render :
  app_name:string -> seconds:float -> Backdroid.Driver.result -> string
