(** Fixed-size [Domain] worker pool with a mutex/condition task queue.

    Tasks pushed to the queue are opaque thunks that never raise (the
    batch combinators wrap user functions and park outcomes in a result
    cell).  The submitting thread helps drain the queue while its own batch
    is outstanding, which both keeps all [jobs] cores busy and makes nested
    batches on one pool deadlock-free: nobody ever blocks waiting for a task
    that only a blocked thread could run. *)

type task = unit -> unit

type t = {
  jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t;   (* a task was enqueued / the pool closed *)
  progress : Condition.t;   (* a task completed (batch helpers wait here) *)
  queue : task Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let jobs t = t.jobs

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.closed then None
    else begin
      Condition.wait t.nonempty t.mutex;
      next ()
    end
  in
  let task = next () in
  Mutex.unlock t.mutex;
  match task with
  | None -> ()
  | Some task ->
    task ();
    worker_loop t

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    { jobs; mutex = Mutex.create (); nonempty = Condition.create ();
      progress = Condition.create ();
      queue = Queue.create (); closed = false; workers = [] }
  in
  t.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

(** A pool stays active until {!shutdown}.  Long-lived consumers that hold a
    pool for optional sharding (e.g. lazy index builds) check this and fall
    back to sequential work once the pool is gone. *)
let is_active t =
  Mutex.lock t.mutex;
  let active = not t.closed in
  Mutex.unlock t.mutex;
  active

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* One fire-and-forget task.  With no worker domains (jobs = 1) or after
   shutdown there is nobody to pop the queue, so run inline — the caller
   gets sequential semantics instead of a silently dropped task. *)
let async t task =
  if t.jobs = 1 then task ()
  else begin
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      task ()
    end else begin
      Queue.push task t.queue;
      Condition.signal t.nonempty;
      Mutex.unlock t.mutex
    end
  end

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)

type 'b cell = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

(* Collect a settled batch, preferring the lowest-index failure. *)
let collect results =
  Array.iter
    (function
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Done _ -> ()
      | Pending -> assert false)
    results;
  Array.map (function Done v -> v | Failed _ | Pending -> assert false) results

let parallel_map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.jobs = 1 || n = 1 then Array.map f arr
  else begin
    let results = Array.make n Pending in
    let remaining = Atomic.make n in
    let run i =
      (match f arr.(i) with
       | v -> results.(i) <- Done v
       | exception e ->
         let bt = Printexc.get_raw_backtrace () in
         results.(i) <- Failed (e, bt));
      (* the decrement publishes the cell write to whoever observes it *)
      ignore (Atomic.fetch_and_add remaining (-1));
      Mutex.lock t.mutex;
      Condition.broadcast t.progress;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.push (fun () -> run i) t.queue
    done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    (* Help drain until this batch has settled.  The popped task may belong
       to another in-flight batch on the same pool — running it here is still
       progress and keeps nesting deadlock-free.  When the queue is empty but
       tasks are still in flight on other domains, sleep until one completes
       rather than spinning (a hot caller would steal cycles from the workers
       on saturated machines).  No lost wakeup: completions broadcast
       [progress] under the same mutex that guards our emptiness check. *)
    let rec help () =
      if Atomic.get remaining > 0 then begin
        Mutex.lock t.mutex;
        let task =
          if Queue.is_empty t.queue then None else Some (Queue.pop t.queue)
        in
        match task with
        | Some task ->
          Mutex.unlock t.mutex;
          task ();
          help ()
        | None ->
          if Atomic.get remaining > 0 then Condition.wait t.progress t.mutex;
          Mutex.unlock t.mutex;
          help ()
      end
    in
    help ();
    collect results
  end

let parallel_map_list t f xs =
  Array.to_list (parallel_map t f (Array.of_list xs))

let parallel_ranges t ?chunks ~n f =
  if n <= 0 then []
  else begin
    let chunks = max 1 (min n (Option.value ~default:t.jobs chunks)) in
    let size = (n + chunks - 1) / chunks in
    let nchunks = (n + size - 1) / size in
    let ranges =
      Array.init nchunks (fun i -> (i * size, min n ((i + 1) * size)))
    in
    Array.to_list (parallel_map t (fun (lo, hi) -> f ~lo ~hi) ranges)
  end

let parallel_chunks t ?chunk_size f arr =
  let n = Array.length arr in
  let size =
    match chunk_size with
    | Some c -> max 1 c
    | None -> max 1 ((n + t.jobs - 1) / t.jobs)
  in
  parallel_ranges t ~chunks:((n + size - 1) / size) ~n (fun ~lo ~hi ->
      f (Array.sub arr lo (hi - lo)))
