(** Corpora mirroring the paper's datasets: the 144 modern apps of the main
    evaluation, the yearly app-size samples of Table I, the detection corpus
    of Sec. VI-C, and a sink-count sweep for Fig. 9. *)

module Sinks = Framework.Sinks

(** Calibration constant: how many IR statements stand in for one APK
    megabyte.  Chosen so that whole-app analysis cost scales with "app size"
    on the same relative scale as the paper's corpus. *)
val stmts_per_mb : int

(** Average statements contributed by one filler class under the default
    method/statement knobs (ctor + step + methods). *)
val filler_class_stmts : methods_per_class:int -> stmts_per_method:int -> int
val filler_classes_for_mb :
  mb:float -> methods_per_class:int -> stmts_per_method:int -> int

(** Lognormal sample with the given median and mean (mean > median). *)
val lognormal : Rng.t -> median:float -> mean:float -> float

(** Table I year models: (average MB, median MB, sample count). *)
val year_models : (int * (float * float * int)) list

(** Sample the app-size distribution of a given year (sizes only — Table I
    needs no app bodies). *)
val yearly_sizes : seed:int -> int -> float list
val weighted_choice : Rng.t -> (float * 'a) list -> 'a

(** Shape mix for the performance corpora: all search mechanisms exercised,
    weighted towards the common patterns. *)
val performance_shape_mix : (float * Shape.t) list
val primary_sink_mix : (float * Sinks.t) list
val random_plant :
  Rng.t -> insecure_p:float -> Generator.plant_spec

(** One config of the 144-app corpus.  [scale] scales app sizes down for
    quick runs (1.0 = full calibrated sizes). *)
val modern_app :
  scale:float -> Rng.t -> int -> Generator.config

(** The 144 "modern popular apps" of Sec. VI-A.  Includes one deliberate
    outlier with 121 sink calls (the paper's Huawei Health case). *)
val modern_144 :
  ?scale:float ->
  ?seed:int -> ?count:int -> unit -> Generator.config list
type detection_app = { config : Generator.config; group : string; }
val small_app :
  ?heavy:bool ->
  seed:int ->
  name:string ->
  mb:float ->
  plants:Generator.plant_spec list ->
  group:string -> unit -> detection_app
val plant :
  Shape.t ->
  Generator.Sinks.t -> bool -> Generator.plant_spec

(** Apps mirroring the detection-result populations of Sec. VI-C:
    - 7 ECB true positives (both tools should detect),
    - 17 SSL true positives, of which 2 use the subclassed-sink shape
      (BackDroid's documented FNs),
    - 6 SSL false positives from unregistered components (Amandroid FPs),
    - the "additional detection" groups: oversized/timeout apps, skipped
      libraries, async/callback flows the baseline misses. *)
val detection : ?seed:int -> ?timeout_mb:float -> unit -> detection_app list
val sink_sweep :
  ?seed:int -> ?mb:float -> unit -> Generator.config list
