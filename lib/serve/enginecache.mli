(** The daemon's hot-engine LRU: resident analysis sessions keyed by
    snapshot path + content stamp + ruleset hash (or app-spec fingerprint
    for snapshotless requests), evicted least-recently-used under an
    entry-count and a resident-bytes ceiling.  Eviction drops the table's
    reference only — in-flight requests on an evicted session finish
    safely, and a later request for the same key reloads. *)

type entry = {
  key : string;
  mutable spec : Appspec.t;
      (** the spec the resident program was generated from; a request with
          the same key but a different spec triggers the delta-patch path *)
  mutable session : Backdroid.Driver.session;
  mutable bytes : int;   (** resident-size estimate (postings + floor) *)
  mutable tick : int;    (** LRU clock *)
}

type t

val create : ?max_entries:int -> ?max_bytes:int -> unit -> t

(** Resident-size estimate used for the byte ceiling. *)
val session_bytes : Backdroid.Driver.session -> int

(** Lookup; bumps the LRU clock and the hit/miss counters. *)
val find : t -> string -> entry option

(** Insert (replacing any entry under the key) and evict over-ceiling LRU
    entries; the newest entry always stays resident. *)
val insert :
  t -> key:string -> spec:Appspec.t -> Backdroid.Driver.session -> entry

(** Replace an entry's session after an in-place delta patch (same key,
    new program version); counts as a delta patch, not a miss. *)
val repatch :
  t -> entry -> spec:Appspec.t -> Backdroid.Driver.session -> unit

type stats = {
  entries : int;
  resident_bytes : int;
  hits : int;
  misses : int;
  evictions : int;
  delta_patches : int;
}

val stats : t -> stats
val mem : t -> string -> bool
