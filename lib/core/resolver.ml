(** The caller-resolution broker: the single entry point through which the
    backward slicing answers "who calls / activates this method?".

    {!callers} classifies the callee (absorbing the old [Dispatch] module),
    runs the matching Sec. IV search strategy — basic signature search
    (IV-A), forward object taint (IV-B), recursive class-use search for
    [<clinit>] (IV-C), the two-time ICC search (IV-D) or the lifecycle
    domain knowledge (IV-E) — and returns a uniform {!resolution}: terminal
    flags plus typed {!caller} records, each carrying its ready-made
    [Ssg.edge] and a {!bind} describing how residual taints map onto the
    caller.  The slicer's two traversals consume these records generically,
    with no per-strategy match arms.

    Every resolution emits one structured {!Trace.event} through the
    context's pluggable sink. *)

open Ir

(** Which Sec. IV mechanism answered the query.  [Icc] is selected by the
    residual {!demand} (Intent-extra residuals at a lifecycle handler), the
    others by {!classify}. *)
type strategy = Basic | Advanced | Clinit | Lifecycle | Icc

let strategy_to_string = function
  | Basic -> "basic"
  | Advanced -> "advanced"
  | Clinit -> "clinit"
  | Lifecycle -> "lifecycle"
  | Icc -> "icc"

(** Dense strategy slot, the index into [Context.prov_resolutions] /
    [Provenance.strategy_names] (same order). *)
let strategy_index = function
  | Basic -> 0
  | Advanced -> 1
  | Clinit -> 2
  | Lifecycle -> 3
  | Icc -> 4

(** Classify [callee].  Order matters: [<clinit>] before everything (it is a
    static method but unsearchable); lifecycle handlers before the
    super/interface test (they override framework declarations yet need the
    domain-knowledge search, not object taint).  Never returns [Icc]. *)
let classify program (callee : Jsig.meth) =
  if Jsig.is_clinit callee then Clinit
  else if Lifecycle_search.is_lifecycle_handler program callee then Lifecycle
  else
    match Program.find_method program callee with
    | Some m when Jmethod.is_signature_method m -> Basic
    | Some _ | None ->
      if Program.overrides_foreign_declaration program callee then Advanced
      else Basic

(** Summary of the residual taints at the callee's entry — all the broker
    needs for strategy selection and caller construction (the taint tables
    themselves stay inside the slicer). *)
type demand = {
  has_intent : bool;              (** Intent-extra residuals present *)
  has_this : bool;                (** the receiver object itself is tainted *)
  this_fields : Jsig.field list;  (** tainted fields of the receiver *)
}

(** How the slicer maps residual taints onto a caller record. *)
type bind =
  | Bind_call of { invoke : Expr.invoke; from : int }
      (** ordinary call site: map every residual onto args/receiver, resume
          backward from [from] *)
  | Bind_intent of { intent_local : string; from : int }
      (** ICC launch site: re-key Intent-extra residuals onto the Intent
          local *)
  | Bind_fields
      (** earlier lifecycle handler: map receiver-field residuals onto the
          predecessor's own [this]; resume from its body end *)
  | Bind_async of {
      obj_local : string;
          (** the tracked object's local in the chain-head method *)
      ending : (Jsig.meth * int * Expr.invoke) option;
          (** app-level ending call [(containing method, site, invoke)] for
              parameter residuals; [None] = framework ending *)
    }

(** One resolved caller: the method backtracking continues in, the SSG edge
    to record when the record is accepted, and the taint mapping. *)
type caller = {
  c_meth : Jsig.meth;
  c_edge : Ssg.edge;
  c_bind : bind;
}

(** The broker's uniform answer.  [entry] marks the callee itself as a
    reachable root ([Ssg.add_entry]); [complete] means the flow terminates
    here successfully (reach mode: reachable; dataflow mode: the residuals
    are framework-provided); [callers] are the continuations. *)
type resolution = {
  strategy : strategy;
  entry : bool;
  complete : bool;
  callers : caller list;
}

let resolution ?(entry = false) ?(complete = false) strategy callers =
  { strategy; entry; complete; callers }

(* ------------------------------------------------------------------ *)
(* Strategy runners                                                    *)

let basic_records ctx m =
  List.map
    (fun (cs : Basic_search.call_site) ->
       { c_meth = cs.caller;
         c_edge = Ssg.Call { caller = cs.caller; site = cs.site; callee = m };
         c_bind = Bind_call { invoke = cs.invoke; from = cs.site - 1 } })
    (Basic_search.callers ctx.Context.engine m)

let advanced_records ctx m =
  List.map
    (fun (ac : Object_taint.advanced_caller) ->
       { c_meth = ac.caller;
         c_edge =
           Ssg.Async
             { caller = ac.caller; ctor_site = ac.obj_site;
               ctor_local = ac.obj_local; callee = m; chain = ac.chain;
               ending = ac.ending };
         c_bind =
           Bind_async
             { obj_local = ac.obj_local;
               ending =
                 (match ac.ending_invoke with
                  | Some iv -> Some (ac.ending_in, ac.ending_site, iv)
                  | None -> None) } })
    (Object_taint.advanced_callers ctx.Context.engine ctx.Context.loops m)

let clinit_resolution ctx m =
  let ok, _chain =
    Clinit_search.clinit_reachable ctx.Context.engine ctx.Context.manifest m
  in
  resolution Clinit ~entry:ok ~complete:ok []

let icc_records ctx (m : Jsig.meth) =
  match
    Manifest.App_manifest.find_component ctx.Context.manifest m.Jsig.cls
  with
  | None -> []  (* unregistered component: path invalid *)
  | Some component ->
    List.map
      (fun (site : Icc_search.icc_site) ->
         { c_meth = site.caller;
           c_edge =
             Ssg.Icc { caller = site.caller; site = site.site; handler = m };
           c_bind =
             Bind_intent
               { intent_local = site.intent_local; from = site.site - 1 } })
      (Icc_search.callers ctx.Context.engine ~component)

(* ICC boundary with residual Intent data.  In-app senders continue the
   dataflow; a registered component with {e no} in-app senders is still a
   valid flow endpoint when the manifest exports it — the launching Intent
   then comes from outside the app (the intent-redirection threat model), so
   the path both reaches an entry point and completes there.  Unregistered
   (or unexported, sender-less) components stay dead, exactly as before. *)
let icc_resolution ctx (m : Jsig.meth) =
  match icc_records ctx m with
  | [] ->
    (match
       Manifest.App_manifest.find_component ctx.Context.manifest m.Jsig.cls
     with
     | Some c when c.Manifest.Component.exported ->
       resolution Icc ~entry:true ~complete:true []
     | Some _ | None -> resolution Icc [])
  | records -> resolution Icc records

(** Lifecycle handler carrying residual state (dataflow mode): an entry
    handler completes the flow when the residuals are framework-provided,
    otherwise the earlier handlers of the same component continue it. *)
let lifecycle_resolution ctx (d : demand) (m : Jsig.meth) =
  if not (Manifest.App_manifest.is_entry_class ctx.Context.manifest m.Jsig.cls)
  then resolution Lifecycle []  (* unregistered component: deactivated *)
  else if d.this_fields = [] then
    (* residual params are framework-provided: flow complete *)
    resolution Lifecycle ~entry:true ~complete:true []
  else
    let preds = Lifecycle_search.predecessor_handlers ctx.Context.program m in
    if preds = [] then resolution Lifecycle ~entry:true ~complete:true []
    else
      resolution Lifecycle ~entry:true
        (List.map
           (fun pre ->
              { c_meth = pre;
                c_edge = Ssg.Lifecycle { pre; handler = m };
                c_bind = Bind_fields })
           preds)

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)

(* Resolution counters, one per strategy, registered up front so the
   metrics snapshot lists all five even when a strategy never ran. *)
let m_resolutions =
  List.map
    (fun s ->
       (s, Obs.Metrics.counter ("resolve." ^ strategy_to_string s)))
    [ Basic; Advanced; Clinit; Lifecycle; Icc ]

let m_callers = Obs.Metrics.counter "resolve.callers"

(* One resolution = one [Trace.event] through the context sink (the
   [--trace] surface, shape unchanged) and one "resolve" span carrying the
   same fields as attributes (the [--profile] surface). *)
let traced ctx strategy query f =
  let engine = ctx.Context.engine in
  let s0 = Bytesearch.Engine.total_searches engine in
  let c0 = Bytesearch.Engine.cached_searches engine in
  let span0 = Obs.Span.start () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let elapsed_us = (Unix.gettimeofday () -. t0) *. 1e6 in
  let hits = List.length r.callers in
  let searches = Bytesearch.Engine.total_searches engine - s0 in
  let cached = Bytesearch.Engine.cached_searches engine - c0 in
  Obs.Metrics.incr (List.assoc strategy m_resolutions);
  Obs.Metrics.add m_callers hits;
  let idx = strategy_index strategy in
  ctx.Context.prov_resolutions.(idx) <-
    ctx.Context.prov_resolutions.(idx) + 1;
  ctx.Context.prov_callers.(idx) <- ctx.Context.prov_callers.(idx) + hits;
  (* flight record: the query string is already retained by the search
     cache, so the ring holds one cons and one tuple per resolution — the
     full per-resolution numbers live in --trace and the provenance
     ledger, and re-retaining them here measurably dents the always-on
     budget *)
  Obs.Flight.record ~kind:"trace" ~name:(strategy_to_string strategy)
    ~attrs:[ ("query", Obs.Span.Str query) ] ();
  if Obs.Span.pending span0 then
    Obs.Span.emit ~cat:"resolve" ~name:(strategy_to_string strategy)
      ~attrs:[ ("query", Obs.Span.Str query);
               ("hits", Obs.Span.Int hits);
               ("searches", Obs.Span.Int searches);
               ("cached", Obs.Span.Int cached) ]
      span0;
  ctx.Context.trace
    { Trace.strategy = strategy_to_string strategy;
      query; hits; searches; cached; elapsed_us };
  r

(* ------------------------------------------------------------------ *)
(* The broker API                                                      *)

(** Resolve the callers of [m].

    Without [demand] the broker answers in *reach mode* — the dataflow is
    already resolved and only control-flow reachability from a registered
    entry point matters (the tail of every empty-residual backtracking
    path, and the recursive step of the sink-API-call cache).

    With [demand] it answers in *dataflow mode* — residual taints must be
    mapped across the boundary, so Intent-extra residuals at a lifecycle
    handler select the two-time ICC search and receiver-field residuals at
    an entry handler select the predecessor-handler search. *)
let callers ?demand ctx (m : Jsig.meth) =
  let program = ctx.Context.program in
  match demand with
  | None ->
    if Lifecycle_search.is_entry program ctx.Context.manifest m then
      traced ctx Lifecycle (Sym.to_string (Jsig.meth_sym m)) (fun () ->
          resolution Lifecycle ~entry:true ~complete:true [])
    else begin
      match classify program m with
      | Lifecycle ->
        (* a lifecycle handler of an unregistered component: deactivated *)
        traced ctx Lifecycle (Sym.to_string (Jsig.meth_sym m)) (fun () ->
            resolution Lifecycle [])
      | Clinit ->
        traced ctx Clinit (Sym.to_string (Sigformat.to_dex_class_sym m.Jsig.cls)) (fun () ->
            clinit_resolution ctx m)
      | Basic ->
        traced ctx Basic (Sym.to_string (Sigformat.to_dex_meth_sym m)) (fun () ->
            resolution Basic (basic_records ctx m))
      | Advanced ->
        traced ctx Advanced (Sym.to_string (Sigformat.to_dex_meth_sym m)) (fun () ->
            resolution Advanced (advanced_records ctx m))
      | Icc -> assert false  (* classify never selects Icc *)
    end
  | Some d ->
    if d.has_intent && Lifecycle_search.is_lifecycle_handler program m then
      (* ICC boundary: the residual data lives in the launching Intent *)
      traced ctx Icc (Sym.to_string (Sigformat.to_dex_class_sym m.Jsig.cls)) (fun () ->
          icc_resolution ctx m)
    else if Lifecycle_search.is_lifecycle_handler program m then
      traced ctx Lifecycle (Sym.to_string (Jsig.meth_sym m)) (fun () ->
          lifecycle_resolution ctx d m)
    else begin
      match classify program m with
      | Clinit ->
        (* no dataflow crosses a <clinit>; only reachability matters, and
           remaining static-field taints resolve off-path *)
        traced ctx Clinit (Sym.to_string (Sigformat.to_dex_class_sym m.Jsig.cls)) (fun () ->
            clinit_resolution ctx m)
      | Basic ->
        traced ctx Basic (Sym.to_string (Sigformat.to_dex_meth_sym m)) (fun () ->
            resolution Basic (basic_records ctx m))
      | Advanced ->
        traced ctx Advanced (Sym.to_string (Sigformat.to_dex_meth_sym m)) (fun () ->
            resolution Advanced (advanced_records ctx m))
      | Lifecycle | Icc -> assert false  (* handled above / never classified *)
    end
