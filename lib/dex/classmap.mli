(** Per-class content-hash table over a disassembled dexfile.

    One entry per class, in line order (classes are contiguous runs of the
    dex plaintext): its [\[lo, hi)] line range, its [\[lo, hi)] arena slot
    range, the FNV-1a-64 hash of its rendered lines ([text_hash], computed
    at disassembly time while the texts are in hand) and the structural
    {!Ir.Irhash} of its IR ([ir_hash]).

    The delta snapshot path ({!Store.Snapshot}, PR 8) diffs a new build
    against an old snapshot by [ir_hash] — no rendering needed for
    unchanged classes — and uses the ranges to splice lines, arena slots,
    postings rows and text-store byte ranges per class. *)

type t = private {
  names : string array;        (** class name per entry, in line order *)
  line_lo : int array;
  line_hi : int array;         (** [\[line_lo.(i), line_hi.(i))] lines *)
  slot_lo : int array;
  slot_hi : int array;         (** [\[slot_lo.(i), slot_hi.(i))] arena slots *)
  text_hash : int64 array;     (** FNV-1a-64 over the rendered lines *)
  ir_hash : int64 array;       (** structural {!Ir.Irhash.jclass} *)
  index : (string, int) Hashtbl.t;
}

val empty : t
val length : t -> int

(** Entry index of [name], if present. *)
val find : t -> string -> int option

(** Structural IR hash of class [name], if present. *)
val ir_hash_of : t -> string -> int64 option

(** Rebuild from columns (the snapshot load path).  Raises
    [Invalid_argument] on a column length mismatch. *)
val v :
  names:string array ->
  line_lo:int array -> line_hi:int array ->
  slot_lo:int array -> slot_hi:int array ->
  text_hash:int64 array -> ir_hash:int64 array -> t

(** FNV-1a-64 over lines [\[lo, hi)] (their [text] fields, each
    length-prefixed) — the canonical per-class text hash. *)
val text_hash_of_lines : Disasm.line array -> int -> int -> int64

(** Build the table in one pass over freshly disassembled lines (which must
    carry real text) and their arena. *)
val of_lines : Disasm.line array -> Arena.t -> Ir.Program.t -> t
