(** The bytecode search engine: executes typed queries over the dexdump
    plaintext, returning hits mapped back to their enclosing methods, with
    command-level caching (Sec. IV-F).

    Two execution modes exist: the default inverted index is built once at
    preprocessing time and answers queries in O(1); the un-indexed mode scans
    every line per query, like the paper's prototype shelling out to grep —
    kept for the search-cost ablation benchmark. *)

(** One matching plaintext line. *)
type hit = {
  line_no : int;              (** position in the merged dex plaintext *)
  text : string;              (** the raw matching line *)
  owner : Ir.Jsig.meth;       (** enclosing method of the matching line *)
  owner_cls : string;         (** enclosing class *)
  stmt_idx : int option;      (** IR statement index, when the line is an
                                  instruction *)
}

type t

(** Build an engine over a disassembled app.  [indexed] (default true)
    selects the inverted-index mode.  [pool] shards index construction
    across the pool's domains (per-domain slices of the plaintext indexed
    into domain-local tables, then merged in slice order); the resulting
    index is identical to the sequential build.  Queries against the engine
    are safe from multiple domains: the command cache is mutex-guarded and
    hit/miss counters are scheduling-independent. *)
val create : ?indexed:bool -> ?pool:Parallel.Pool.t -> Dex.Dexfile.t -> t

(** The program the engine's dexfile was disassembled from — the "program
    analysis space" paired with this "bytecode search space". *)
val program : t -> Ir.Program.t

(** Execute a query, consulting the command cache first. *)
val run : t -> Query.t -> hit list

(** Execute a query bypassing the command cache (used by the ablation
    benchmarks to measure raw query cost). *)
val run_uncached : t -> Query.t -> hit list

(** Fraction of search commands served from the cache, in [0, 1]. *)
val cache_rate : t -> float

val total_searches : t -> int
val cached_searches : t -> int

(** Per-category totals: (category, total searches, cache hits). *)
val category_stats : t -> (Query.category * int * int) list

(** Per-category accumulated compute cost: µs spent computing this
    category's cache misses (hits cost nothing). *)
val category_timings : t -> (Query.category * float) list
