(* Direct unit tests for the Resolver broker: the clinit class-use strategy
   (Sec. IV-C) and the two-time ICC strategy (Sec. IV-D) exercised through
   the uniform [Resolver.callers] API, the per-sink budget's typed [Partial]
   outcomes, and the structured trace ring/aggregation. *)

open Ir
module B = Builder
module Api = Framework.Api
module Context = Backdroid.Context
module Resolver = Backdroid.Resolver
module Trace = Backdroid.Trace

let plain_ctor ~cls ~super =
  B.constructor ~cls (fun mb ->
      B.invoke mb ~base:(B.this mb) ~kind:Expr.Special
        ~callee:(Jsig.meth ~cls:super ~name:"<init>" ~params:[] ~ret:Types.Void)
        ~args:[] ())

(** Build a full analysis context over hand-built classes: engine, manifest,
    shared state and a throwaway SSG. *)
let ctx_of ?trace ?budget classes components =
  let p = Program.of_classes (Framework.Stubs.classes () @ classes) in
  let engine = Bytesearch.Engine.create (Dex.Dexfile.of_program p) in
  let manifest = Manifest.App_manifest.make ~package:"rz" ~components in
  let shared = Context.shared ?trace ~engine ~manifest () in
  let sink_meth = Jsig.meth ~cls:"rz.X" ~name:"x" ~params:[] ~ret:Types.Void in
  Context.create ?budget shared
    ~ssg:(Backdroid.Ssg.create ~sink:Framework.Sinks.cipher ~sink_meth ~sink_site:0)

(* --- Sec. IV-C through the broker: recursive class-use search --- *)

let holder_cls = "rz.Holder"

let holder =
  Jclass.make holder_cls
    ~methods:
      [ B.clinit ~cls:holder_cls (fun mb -> ignore (B.const_str mb "seed"));
        B.method_ ~access:B.static_access ~cls:holder_cls ~name:"get"
          ~params:[] ~ret:Types.Void (fun _ -> ()) ]

let activity ~uses_holder =
  Jclass.make ~super:(Some "android.app.Activity") "rz.Act"
    ~methods:
      [ plain_ctor ~cls:"rz.Act" ~super:"android.app.Activity";
        B.method_ ~cls:"rz.Act" ~name:"onCreate" ~params:[ Api.bundle_t ]
          ~ret:Types.Void (fun mb ->
            if uses_holder then
              B.call_static mb
                ~callee:
                  (Jsig.meth ~cls:holder_cls ~name:"get" ~params:[]
                     ~ret:Types.Void)
                ~args:[]) ]

let clinit_meth =
  Jsig.meth ~cls:holder_cls ~name:"<clinit>" ~params:[] ~ret:Types.Void

let act_component = Manifest.Component.make ~kind:Manifest.Component.Activity "rz.Act"

let test_clinit_reachable () =
  let ctx = ctx_of [ holder; activity ~uses_holder:true ] [ act_component ] in
  let r = Resolver.callers ctx clinit_meth in
  Alcotest.(check string) "clinit strategy selected" "clinit"
    (Resolver.strategy_to_string r.Resolver.strategy);
  Alcotest.(check bool) "entry through class use from rz.Act" true
    r.Resolver.entry;
  Alcotest.(check bool) "complete: reachability only, no dataflow" true
    r.Resolver.complete;
  Alcotest.(check int) "no caller continuations for <clinit>" 0
    (List.length r.Resolver.callers)

let test_clinit_unreachable () =
  let ctx = ctx_of [ holder; activity ~uses_holder:false ] [ act_component ] in
  let r = Resolver.callers ctx clinit_meth in
  Alcotest.(check string) "clinit strategy selected" "clinit"
    (Resolver.strategy_to_string r.Resolver.strategy);
  Alcotest.(check bool) "unused class: not an entry" false r.Resolver.entry;
  Alcotest.(check bool) "unused class: flow does not complete" false
    r.Resolver.complete

(* --- Sec. IV-D through the broker: the two-time ICC search --- *)

let svc_cls = "rz.Svc"

let svc =
  Jclass.make ~super:(Some "android.app.Service") svc_cls
    ~methods:
      [ plain_ctor ~cls:svc_cls ~super:"android.app.Service";
        B.method_ ~cls:svc_cls ~name:"onStartCommand"
          ~params:[ Api.intent_t; Types.Int; Types.Int ] ~ret:Types.Int
          (fun mb -> B.return_val mb (Value.Const (Value.Int_c 1))) ]

let launcher =
  Jclass.make ~super:(Some "android.app.Activity") "rz.Launcher"
    ~methods:
      [ plain_ctor ~cls:"rz.Launcher" ~super:"android.app.Activity";
        B.method_ ~cls:"rz.Launcher" ~name:"onCreate" ~params:[ Api.bundle_t ]
          ~ret:Types.Void (fun mb ->
            let cls_c = B.const_class mb svc_cls in
            let intent =
              B.new_obj mb "android.content.Intent"
                ~ctor_params:[ Api.context_t; Types.Object "java.lang.Class" ]
                ~args:[ Value.Local (B.this mb); Value.Local cls_c ]
            in
            B.invoke mb ~base:(B.this mb) ~kind:Expr.Virtual
              ~callee:Api.context_start_service ~args:[ Value.Local intent ] ()) ]

let on_start_command =
  Jsig.meth ~cls:svc_cls ~name:"onStartCommand"
    ~params:[ Api.intent_t; Types.Int; Types.Int ] ~ret:Types.Int

let intent_demand =
  { Resolver.has_intent = true; has_this = false; this_fields = [] }

let test_icc_resolution () =
  let ctx =
    ctx_of [ svc; launcher ]
      [ Manifest.Component.make ~kind:Manifest.Component.Service svc_cls;
        Manifest.Component.make ~kind:Manifest.Component.Activity "rz.Launcher" ]
  in
  let r = Resolver.callers ~demand:intent_demand ctx on_start_command in
  Alcotest.(check string) "intent demand selects the ICC strategy" "icc"
    (Resolver.strategy_to_string r.Resolver.strategy);
  match r.Resolver.callers with
  | [ c ] ->
    Alcotest.(check string) "launch site found by the two-time merge"
      "rz.Launcher" c.Resolver.c_meth.Jsig.cls;
    (match c.Resolver.c_edge with
     | Backdroid.Ssg.Icc { handler; _ } ->
       Alcotest.(check string) "edge targets the handler" svc_cls
         handler.Jsig.cls
     | _ -> Alcotest.fail "expected an Icc edge");
    (match c.Resolver.c_bind with
     | Resolver.Bind_intent { intent_local; _ } ->
       Alcotest.(check bool) "Intent local captured for re-keying" true
         (intent_local <> "")
     | _ -> Alcotest.fail "expected a Bind_intent mapping")
  | l ->
    Alcotest.fail (Printf.sprintf "expected 1 icc caller, got %d" (List.length l))

let test_icc_unregistered () =
  let ctx =
    ctx_of [ svc; launcher ]
      [ Manifest.Component.make ~kind:Manifest.Component.Activity "rz.Launcher" ]
  in
  let r = Resolver.callers ~demand:intent_demand ctx on_start_command in
  Alcotest.(check string) "still the ICC strategy" "icc"
    (Resolver.strategy_to_string r.Resolver.strategy);
  Alcotest.(check int) "unregistered service yields no launch sites" 0
    (List.length r.Resolver.callers);
  Alcotest.(check bool) "and no entry/complete" false
    (r.Resolver.entry || r.Resolver.complete)

(* --- the per-sink budget: typed Partial outcomes + trace --- *)

let pathological_app =
  lazy
    (Appgen.Generator.generate
       { Appgen.Generator.default_config with
         Appgen.Generator.seed = 11;
         name = "com.budget.deep";
         filler_classes = 2;
         plants =
           [ { Appgen.Generator.shape = Appgen.Shape.Static_chain;
               sink = Framework.Sinks.cipher; insecure = true } ] })

let slice_with ~budget ~trace =
  let app = Lazy.force pathological_app in
  let engine = Bytesearch.Engine.create app.Appgen.Generator.dex in
  let shared =
    Context.shared ~trace ~engine ~manifest:app.Appgen.Generator.manifest ()
  in
  match
    Backdroid.Driver.initial_sink_search
      ~cfg:Backdroid.Driver.default_config engine
  with
  | (sink, sink_meth, sink_site) :: _ ->
    snd (Backdroid.Slicer.slice ~shared ~budget ~sink ~sink_meth ~sink_site ())
  | [] -> Alcotest.fail "generated app has no sink occurrence"

let test_budget_work_exhaustion () =
  let ring = Trace.Ring.create () in
  let outcome =
    slice_with
      ~budget:{ Context.default_budget with Context.max_work = 0 }
      ~trace:(Trace.Ring.sink ring)
  in
  (match outcome with
   | Context.Partial limits ->
     Alcotest.(check bool) "work limit named in the outcome" true
       (List.mem Context.Work limits)
   | Context.Complete -> Alcotest.fail "expected a Partial outcome");
  Alcotest.(check string) "outcome renders its limits" "partial(work)"
    (Context.outcome_to_string outcome);
  Alcotest.(check bool) "resolutions were traced before exhaustion" true
    (Trace.Ring.recorded ring > 0);
  let json = Trace.Ring.to_json ring in
  Alcotest.(check bool) "trace dump is non-empty JSON" true
    (String.length json > 2
     && String.sub json 0 1 = "{"
     && Trace.Ring.length ring > 0)

let test_budget_deadline () =
  let outcome =
    slice_with
      ~budget:
        { Context.default_budget with Context.time_limit_ms = Some 0.0 }
      ~trace:Trace.null
  in
  match outcome with
  | Context.Partial [ Context.Deadline ] -> ()
  | o ->
    Alcotest.fail
      (Printf.sprintf "expected partial(deadline), got %s"
         (Context.outcome_to_string o))

let test_unbudgeted_complete () =
  let outcome = slice_with ~budget:Context.default_budget ~trace:Trace.null in
  Alcotest.(check string) "default budget completes the slice" "complete"
    (Context.outcome_to_string outcome)

(* --- trace ring + aggregation --- *)

let ev ?(strategy = "basic") elapsed_us =
  { Trace.strategy; query = "q"; hits = 1; searches = 2; cached = 1;
    elapsed_us }

let test_ring_wraparound () =
  let r = Trace.Ring.create ~capacity:2 () in
  let sink = Trace.Ring.sink r in
  sink (ev 1.0);
  sink (ev 2.0);
  sink (ev 3.0);
  Alcotest.(check int) "capacity bounds the buffer" 2 (Trace.Ring.length r);
  Alcotest.(check int) "recorded counts every event" 3 (Trace.Ring.recorded r);
  Alcotest.(check (list (float 1e-9))) "oldest first, oldest dropped"
    [ 2.0; 3.0 ]
    (List.map (fun (e : Trace.event) -> e.Trace.elapsed_us)
       (Trace.Ring.events r))

let test_aggregate () =
  let events =
    [ ev 10.0; ev 20.0; ev ~strategy:"icc" 5.0 ]
  in
  match Trace.aggregate events with
  | [ ("basic", b); ("icc", i) ] ->
    Alcotest.(check int) "basic count" 2 b.Trace.a_count;
    Alcotest.(check int) "basic searches summed" 4 b.Trace.a_searches;
    Alcotest.(check (float 1e-9)) "basic mean" 15.0 (Trace.mean_us b);
    Alcotest.(check (float 1e-9)) "basic max" 20.0 b.Trace.a_max_us;
    Alcotest.(check int) "icc cached summed" 1 i.Trace.a_cached
  | l ->
    Alcotest.fail
      (Printf.sprintf "expected 2 strategies, got %d" (List.length l))

let cases =
  [ Alcotest.test_case "clinit reachable via class use" `Quick test_clinit_reachable;
    Alcotest.test_case "clinit unreachable when unused" `Quick test_clinit_unreachable;
    Alcotest.test_case "icc resolution with intent demand" `Quick test_icc_resolution;
    Alcotest.test_case "icc unregistered component" `Quick test_icc_unregistered;
    Alcotest.test_case "work budget yields partial + trace" `Quick
      test_budget_work_exhaustion;
    Alcotest.test_case "deadline budget yields partial" `Quick test_budget_deadline;
    Alcotest.test_case "default budget completes" `Quick test_unbudgeted_complete;
    Alcotest.test_case "trace ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "trace aggregation" `Quick test_aggregate ]

let suites = [ "resolver", cases ]
