lib/core/icc_search.ml: Array Bytesearch Expr Hashtbl Ir Jmethod Jsig List Log Manifest Program Sigformat Stmt Types Value
