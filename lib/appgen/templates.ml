(** Code-pattern templates.  Each template plants one sink API call wrapped in
    a specific code shape (see {!module:Shape}) together with the app classes
    and manifest components that make the flow (un)reachable, and returns the
    ground truth used to score detection accuracy. *)

open Ir
module B = Builder
module Api = Framework.Api
module Sinks = Framework.Sinks
module Component = Manifest.Component

type ctx = {
  ns : string;    (** unique namespace for this plant, e.g. "com.app7.s3" *)
  rng : Rng.t;
}

type planted = {
  shape : Shape.t;
  sink : Sinks.t;
  insecure : bool;
  reachable : bool;
  spec : string;       (** human-readable security-relevant parameter value *)
  sink_class : string; (** class whose code contains the sink call *)
}

type result = {
  classes : Jclass.t list;
  components : Component.t list;
  planted : planted;
}

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)

let void = Types.Void

let ctor_with_super ?(params = []) ~cls ~super gen =
  B.constructor ~params ~cls (fun mb ->
      B.invoke mb ~base:(B.this mb) ~kind:Expr.Special
        ~callee:(Jsig.meth ~cls:super ~name:"<init>" ~params:[] ~ret:void)
        ~args:[] ();
      gen mb)

let plain_ctor ~cls ~super = ctor_with_super ~cls ~super (fun _ -> ())

(** Activity class with a generated [onCreate] plus its manifest entry. *)
let make_activity ?(extra_methods = fun _cls -> []) ?(register = true) ctx
    ~simple ~on_create () =
  let cls = ctx.ns ^ "." ^ simple in
  let klass =
    Jclass.make ~super:(Some "android.app.Activity") cls
      ~methods:
        (plain_ctor ~cls ~super:"android.app.Activity"
         :: B.method_ ~cls ~name:"onCreate" ~params:[ Api.bundle_t ] ~ret:void
              on_create
         :: extra_methods cls)
  in
  let comps =
    if register then [ Component.make ~kind:Component.Activity cls ] else []
  in
  klass, comps

(** The security-relevant value passed to the sink.  May need auxiliary app
    classes (e.g. a trust-all verifier); returns the value's local, the extra
    classes and the ground-truth spec string. *)
let spec_value ctx mb (sink : Sinks.t) ~insecure =
  let is api = Jsig.meth_equal sink.msig api in
  if is Api.cipher_get_instance then
    let s = if insecure then "AES/ECB/PKCS5Padding" else "AES/GCM/NoPadding" in
    B.const_str mb s, [], s
  else if is Api.ssl_set_hostname_verifier then
    if insecure then
      B.sget mb Api.allow_all_hostname_verifier, [], "ALLOW_ALL_HOSTNAME_VERIFIER"
    else
      ( B.new_obj mb "org.apache.http.conn.ssl.StrictHostnameVerifier"
          ~ctor_params:[] ~args:[],
        [], "StrictHostnameVerifier" )
  else if is Api.https_set_hostname_verifier then begin
    (* javax.net.ssl.HttpsURLConnection variant: pass an app-defined verifier
       whose [verify] returns a constant. *)
    let vcls =
      ctx.ns ^ "." ^ (if insecure then "TrustAllVerifier" else "StrictVerifier")
    in
    let verify =
      B.method_ ~cls:vcls ~name:"verify" ~params:[ Types.string_ ]
        ~ret:Types.Boolean (fun mb ->
          B.return_val mb (Value.Const (Value.Int_c (if insecure then 1 else 0))))
    in
    let klass =
      Jclass.make ~interfaces:[ "javax.net.ssl.HostnameVerifier" ] vcls
        ~methods:[ plain_ctor ~cls:vcls ~super:"java.lang.Object"; verify ]
    in
    B.new_obj mb vcls ~ctor_params:[] ~args:[], [ klass ], vcls
  end
  else if is Api.sms_send_text_message then
    let s = if insecure then "premium-text" else "hello" in
    B.const_str mb s, [], s
  else if is Api.server_socket_init then
    let port = if insecure then 8080 else 8443 in
    B.const_int mb port, [], string_of_int port
  else if is Api.local_server_socket_init then
    let s = if insecure then "open-socket" else "private-socket" in
    B.const_str mb s, [], s
  else if is Api.webview_set_javascript_enabled then
    let b = if insecure then 1 else 0 in
    B.const_int mb b, [], string_of_int b
  else if is Api.webview_add_javascript_interface then
    (* the backtracked argument is the bridge name string *)
    let s = if insecure then "bridge" else "inert" in
    B.const_str mb s, [], s
  else if is Api.sqlite_raw_query then
    let s = "SELECT * FROM items" in
    B.const_str mb s, [], s
  else if is Api.context_start_activity then
    ( B.new_obj mb "android.content.Intent" ~ctor_params:[] ~args:[],
      [], "android.content.Intent" )
  else
    invalid_arg
      (Printf.sprintf "Templates.spec_value: no value template for sink %s"
         sink.Sinks.name)

(** IR type of the value a sink-bound chain passes along. *)
let chain_ty (sink : Sinks.t) = List.nth sink.msig.Jsig.params sink.param_index

(** Emit the sink API call itself, consuming [value]. *)
let emit_sink mb (sink : Sinks.t) ~value =
  let v = Value.Local value in
  let is api = Jsig.meth_equal sink.msig api in
  if is Api.cipher_get_instance then
    ignore (B.invoke_ret mb ~kind:Expr.Static ~callee:sink.msig ~args:[ v ] ())
  else if is Api.ssl_set_hostname_verifier then begin
    let f =
      B.invoke_ret mb ~kind:Expr.Static
        ~callee:
          (Jsig.meth ~cls:"org.apache.http.conn.ssl.SSLSocketFactory"
             ~name:"getSocketFactory" ~params:[] ~ret:Api.ssl_socket_factory_t)
        ~args:[] ()
    in
    B.call_virtual mb ~base:f ~callee:sink.msig ~args:[ v ]
  end
  else if is Api.https_set_hostname_verifier then begin
    let conn =
      B.new_obj mb "javax.net.ssl.HttpsURLConnection" ~ctor_params:[] ~args:[]
    in
    B.call_virtual mb ~base:conn ~callee:sink.msig ~args:[ v ]
  end
  else if is Api.sms_send_text_message then begin
    let mgr =
      B.invoke_ret mb ~kind:Expr.Static ~callee:Api.sms_get_default ~args:[] ()
    in
    let null = Value.Const Value.Null in
    B.call_virtual mb ~base:mgr ~callee:sink.msig ~args:[ null; null; v; null; null ]
  end
  else if is Api.server_socket_init then
    ignore
      (B.new_obj mb "java.net.ServerSocket" ~ctor_params:[ Types.Int ]
         ~args:[ v ])
  else if is Api.local_server_socket_init then
    ignore
      (B.new_obj mb "android.net.LocalServerSocket" ~ctor_params:[ Types.string_ ]
         ~args:[ v ])
  else if is Api.webview_set_javascript_enabled then begin
    let w = B.new_obj mb "android.webkit.WebView" ~ctor_params:[] ~args:[] in
    B.call_virtual mb ~base:w ~callee:sink.msig ~args:[ v ]
  end
  else if is Api.webview_add_javascript_interface then begin
    let w = B.new_obj mb "android.webkit.WebView" ~ctor_params:[] ~args:[] in
    let o = B.new_obj mb "java.lang.Object" ~ctor_params:[] ~args:[] in
    B.call_virtual mb ~base:w ~callee:sink.msig ~args:[ Value.Local o; v ]
  end
  else if is Api.sqlite_raw_query then begin
    let db =
      B.new_obj mb "android.database.sqlite.SQLiteDatabase" ~ctor_params:[]
        ~args:[]
    in
    ignore
      (B.invoke_ret mb ~base:db ~kind:Expr.Virtual ~callee:sink.msig
         ~args:[ v; Value.Const Value.Null ] ())
  end
  else if is Api.context_start_activity then begin
    let recv =
      B.new_obj mb "android.app.Activity" ~ctor_params:[] ~args:[]
    in
    B.call_virtual mb ~base:recv ~callee:sink.msig ~args:[ v ]
  end
  else
    invalid_arg
      (Printf.sprintf "Templates.emit_sink: no call template for sink %s"
         sink.Sinks.name)

(** A chain of [n] public-static hop methods [step0 .. step(n-1)] in class
    [cls]; each passes its parameter to the next, the last runs [last].
    Returns the class and the signature of [step0]. *)
let static_chain ~cls ~ty ~n ~last =
  let step i = Jsig.meth ~cls ~name:(Printf.sprintf "step%d" i) ~params:[ ty ] ~ret:void in
  let methods =
    List.init n (fun i ->
        B.method_ ~access:B.static_access ~cls ~name:(Printf.sprintf "step%d" i)
          ~params:[ ty ] ~ret:void (fun mb ->
            let p = B.param mb 0 in
            if i = n - 1 then last mb p
            else
              B.call_static mb ~callee:(step (i + 1)) ~args:[ Value.Local p ]))
  in
  Jclass.make cls ~methods:(plain_ctor ~cls ~super:"java.lang.Object" :: methods),
  step 0

let mk_planted ?reachable ctx shape sink ~insecure ~spec ~sink_class =
  ignore ctx;
  { shape; sink; insecure;
    reachable = Option.value ~default:(Shape.reachable shape) reachable;
    spec; sink_class }

(* ------------------------------------------------------------------ *)
(* Shape implementations                                               *)

(** entry activity onCreate → private doWork(v) → static chain → sink *)
let plant_direct ctx ~sink ~insecure =
  let ty = chain_ty sink in
  let extra = ref [] in
  let spec = ref "" in
  let chain_cls = ctx.ns ^ ".util.Chain" in
  let chain_klass, chain_head =
    static_chain ~cls:chain_cls ~ty ~n:(2 + Rng.int ctx.rng 3)
      ~last:(fun mb p -> emit_sink mb sink ~value:p)
  in
  let act_cls = ctx.ns ^ ".MainActivity" in
  let act, comps =
    make_activity ctx ~simple:"MainActivity"
      ~extra_methods:(fun cls ->
        [ B.method_ ~access:B.private_access ~cls ~name:"doWork" ~params:[ ty ]
            ~ret:void (fun mb ->
              B.call_static mb ~callee:chain_head
                ~args:[ Value.Local (B.param mb 0) ]) ])
      ~on_create:(fun mb ->
        let v, cs, s = spec_value ctx mb sink ~insecure in
        extra := cs;
        spec := s;
        (* private callee: javac emits invoke-direct *)
        B.invoke mb ~base:(B.this mb) ~kind:Expr.Special
          ~callee:(Jsig.meth ~cls:act_cls ~name:"doWork" ~params:[ ty ] ~ret:void)
          ~args:[ Value.Local v ] ())
      ()
  in
  { classes = act :: chain_klass :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Direct sink ~insecure ~spec:!spec ~sink_class:chain_cls }

(** entry → static chain only *)
let plant_static_chain ctx ~sink ~insecure =
  let ty = chain_ty sink in
  let extra = ref [] and spec = ref "" in
  let chain_cls = ctx.ns ^ ".util.SChain" in
  let chain_klass, chain_head =
    static_chain ~cls:chain_cls ~ty ~n:(3 + Rng.int ctx.rng 3)
      ~last:(fun mb p -> emit_sink mb sink ~value:p)
  in
  let act, comps =
    make_activity ctx ~simple:"SMainActivity"
      ~on_create:(fun mb ->
        let v, cs, s = spec_value ctx mb sink ~insecure in
        extra := cs;
        spec := s;
        B.call_static mb ~callee:chain_head ~args:[ Value.Local v ])
      ()
  in
  { classes = act :: chain_klass :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Static_chain sink ~insecure ~spec:!spec
        ~sink_class:chain_cls }

(** Base.start(v) has the sink; Child extends Base without overriding; the
    caller invokes through a Child-typed receiver. *)
let plant_child_class ctx ~sink ~insecure =
  let ty = chain_ty sink in
  let extra = ref [] and spec = ref "" in
  let base_cls = ctx.ns ^ ".server.BaseServer" in
  let child_cls = ctx.ns ^ ".server.ChildServer" in
  let base =
    Jclass.make base_cls
      ~methods:
        [ plain_ctor ~cls:base_cls ~super:"java.lang.Object";
          B.method_ ~cls:base_cls ~name:"start" ~params:[ ty ] ~ret:void
            (fun mb -> emit_sink mb sink ~value:(B.param mb 0)) ]
  in
  let child =
    Jclass.make ~super:(Some base_cls) child_cls
      ~methods:[ plain_ctor ~cls:child_cls ~super:base_cls ]
  in
  let act, comps =
    make_activity ctx ~simple:"CMainActivity"
      ~on_create:(fun mb ->
        let v, cs, s = spec_value ctx mb sink ~insecure in
        extra := cs;
        spec := s;
        let srv = B.new_obj mb child_cls ~ctor_params:[] ~args:[] in
        (* invocation is emitted against the child class signature *)
        B.call_virtual mb ~base:srv
          ~callee:(Jsig.meth ~cls:child_cls ~name:"start" ~params:[ ty ] ~ret:void)
          ~args:[ Value.Local v ])
      ()
  in
  { classes = act :: base :: child :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Child_class sink ~insecure ~spec:!spec
        ~sink_class:base_cls }

(** NetServer overrides SuperServer.start; call goes through the super-class
    type, so the callee's own signature never appears in the bytecode. *)
let plant_super_class ctx ~sink ~insecure =
  let ty = chain_ty sink in
  let extra = ref [] and spec = ref "" in
  let super_cls = ctx.ns ^ ".server.SuperServer" in
  let net_cls = ctx.ns ^ ".server.NetServer" in
  let super_k =
    Jclass.make ~is_abstract:true super_cls
      ~methods:
        [ plain_ctor ~cls:super_cls ~super:"java.lang.Object";
          B.abstract_method ~cls:super_cls ~name:"start" ~params:[ ty ] ~ret:void ]
  in
  let net =
    Jclass.make ~super:(Some super_cls) net_cls
      ~methods:
        [ plain_ctor ~cls:net_cls ~super:super_cls;
          B.method_ ~cls:net_cls ~name:"start" ~params:[ ty ] ~ret:void
            (fun mb -> emit_sink mb sink ~value:(B.param mb 0)) ]
  in
  let act, comps =
    make_activity ctx ~simple:"SuMainActivity"
      ~on_create:(fun mb ->
        let v, cs, s = spec_value ctx mb sink ~insecure in
        extra := cs;
        spec := s;
        let srv = B.new_obj mb net_cls ~ctor_params:[] ~args:[] in
        let up = B.assign mb (Types.Object super_cls) (Expr.Imm (Value.Local srv)) in
        B.call_virtual mb ~base:up
          ~callee:(Jsig.meth ~cls:super_cls ~name:"start" ~params:[ ty ] ~ret:void)
          ~args:[ Value.Local v ])
      ()
  in
  { classes = act :: super_k :: net :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Super_class sink ~insecure ~spec:!spec
        ~sink_class:net_cls }

(** TaskImpl implements an app interface; call goes through the interface. *)
let plant_interface ctx ~sink ~insecure =
  let ty = chain_ty sink in
  let extra = ref [] and spec = ref "" in
  let iface_cls = ctx.ns ^ ".task.Task" in
  let impl_cls = ctx.ns ^ ".task.TaskImpl" in
  let iface =
    Jclass.make ~is_interface:true iface_cls
      ~methods:[ B.abstract_method ~cls:iface_cls ~name:"perform" ~params:[ ty ] ~ret:void ]
  in
  let impl =
    Jclass.make ~interfaces:[ iface_cls ] impl_cls
      ~methods:
        [ plain_ctor ~cls:impl_cls ~super:"java.lang.Object";
          B.method_ ~cls:impl_cls ~name:"perform" ~params:[ ty ] ~ret:void
            (fun mb -> emit_sink mb sink ~value:(B.param mb 0)) ]
  in
  let act, comps =
    make_activity ctx ~simple:"IMainActivity"
      ~on_create:(fun mb ->
        let v, cs, s = spec_value ctx mb sink ~insecure in
        extra := cs;
        spec := s;
        let t = B.new_obj mb impl_cls ~ctor_params:[] ~args:[] in
        let ti = B.assign mb (Types.Object iface_cls) (Expr.Imm (Value.Local t)) in
        B.call_interface mb ~base:ti
          ~callee:(Jsig.meth ~cls:iface_cls ~name:"perform" ~params:[ ty ] ~ret:void)
          ~args:[ Value.Local v ])
      ()
  in
  { classes = act :: iface :: impl :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Interface_dispatch sink ~insecure ~spec:!spec
        ~sink_class:impl_cls }

(** A listener class storing the value in a field; flow continues in
    [onClick] after registration via [setOnClickListener]. *)
let plant_callback ctx ~sink ~insecure =
  let ty = chain_ty sink in
  let extra = ref [] and spec = ref "" in
  let l_cls = ctx.ns ^ ".ui.ClickHandler" in
  let fld = Jsig.field ~cls:l_cls ~name:"spec" ~ty in
  let listener =
    Jclass.make ~interfaces:[ "android.view.View$OnClickListener" ] l_cls
      ~fields:[ fld ]
      ~methods:
        [ ctor_with_super ~params:[ ty ] ~cls:l_cls ~super:"java.lang.Object"
            (fun mb -> B.iput mb (B.this mb) fld (Value.Local (B.param mb 0)));
          B.method_ ~cls:l_cls ~name:"onClick" ~params:[ Api.view_t ] ~ret:void
            (fun mb ->
              let v = B.iget mb (B.this mb) fld in
              emit_sink mb sink ~value:v) ]
  in
  let act, comps =
    make_activity ctx ~simple:"UiMainActivity"
      ~on_create:(fun mb ->
        let v, cs, s = spec_value ctx mb sink ~insecure in
        extra := cs;
        spec := s;
        let view = B.new_obj mb "android.view.View" ~ctor_params:[] ~args:[] in
        let h = B.new_obj mb l_cls ~ctor_params:[ ty ] ~args:[ Value.Local v ] in
        B.call_virtual mb ~base:view ~callee:Api.view_set_on_click_listener
          ~args:[ Value.Local h ])
      ()
  in
  { classes = act :: listener :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Callback sink ~insecure ~spec:!spec ~sink_class:l_cls }

(** Runnable job passed to [new Thread(job).start()]. *)
let plant_async_thread ctx ~sink ~insecure =
  let ty = chain_ty sink in
  let extra = ref [] and spec = ref "" in
  let j_cls = ctx.ns ^ ".job.Job" in
  let fld = Jsig.field ~cls:j_cls ~name:"spec" ~ty in
  let job =
    Jclass.make ~interfaces:[ "java.lang.Runnable" ] j_cls ~fields:[ fld ]
      ~methods:
        [ ctor_with_super ~params:[ ty ] ~cls:j_cls ~super:"java.lang.Object"
            (fun mb -> B.iput mb (B.this mb) fld (Value.Local (B.param mb 0)));
          B.method_ ~cls:j_cls ~name:"run" ~params:[] ~ret:void (fun mb ->
              let v = B.iget mb (B.this mb) fld in
              emit_sink mb sink ~value:v) ]
  in
  let act, comps =
    make_activity ctx ~simple:"ThMainActivity"
      ~on_create:(fun mb ->
        let v, cs, s = spec_value ctx mb sink ~insecure in
        extra := cs;
        spec := s;
        let j = B.new_obj mb j_cls ~ctor_params:[ ty ] ~args:[ Value.Local v ] in
        let t =
          B.new_obj mb "java.lang.Thread" ~ctor_params:[ Api.runnable_t ]
            ~args:[ Value.Local j ]
        in
        B.call_virtual mb ~base:t ~callee:Api.thread_start ~args:[])
      ()
  in
  { classes = act :: job :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Async_thread sink ~insecure ~spec:!spec
        ~sink_class:j_cls }

(** The Fig. 4 pattern: runnable handed through a util chain that ends in
    [Executor.execute]. *)
let plant_async_executor ctx ~sink ~insecure =
  let ty = chain_ty sink in
  let extra = ref [] and spec = ref "" in
  let j_cls = ctx.ns ^ ".svc.ConnectJob" in
  let u_cls = ctx.ns ^ ".svc.Util" in
  let fld = Jsig.field ~cls:j_cls ~name:"spec" ~ty in
  let job =
    Jclass.make ~interfaces:[ "java.lang.Runnable" ] j_cls ~fields:[ fld ]
      ~methods:
        [ ctor_with_super ~params:[ ty ] ~cls:j_cls ~super:"java.lang.Object"
            (fun mb -> B.iput mb (B.this mb) fld (Value.Local (B.param mb 0)));
          B.method_ ~cls:j_cls ~name:"run" ~params:[] ~ret:void (fun mb ->
              let v = B.iget mb (B.this mb) fld in
              emit_sink mb sink ~value:v) ]
  in
  let run_bg1 =
    Jsig.meth ~cls:u_cls ~name:"runInBackground" ~params:[ Api.runnable_t ]
      ~ret:void
  in
  let run_bg2 =
    Jsig.meth ~cls:u_cls ~name:"runInBackground"
      ~params:[ Api.runnable_t; Types.Boolean ] ~ret:void
  in
  let util =
    Jclass.make u_cls
      ~methods:
        [ B.method_ ~access:B.static_access ~cls:u_cls ~name:"runInBackground"
            ~params:[ Api.runnable_t ] ~ret:void (fun mb ->
              B.call_static mb ~callee:run_bg2
                ~args:[ Value.Local (B.param mb 0); Value.Const (Value.Int_c 1) ]);
          B.method_ ~access:B.static_access ~cls:u_cls ~name:"runInBackground"
            ~params:[ Api.runnable_t; Types.Boolean ] ~ret:void (fun mb ->
              let ex =
                B.invoke_ret mb ~kind:Expr.Static ~callee:Api.executors_new_single
                  ~args:[] ()
              in
              B.call_interface mb ~base:ex ~callee:Api.executor_execute
                ~args:[ Value.Local (B.param mb 0) ]) ]
  in
  let act, comps =
    make_activity ctx ~simple:"ExMainActivity"
      ~on_create:(fun mb ->
        let v, cs, s = spec_value ctx mb sink ~insecure in
        extra := cs;
        spec := s;
        let j = B.new_obj mb j_cls ~ctor_params:[ ty ] ~args:[ Value.Local v ] in
        B.call_static mb ~callee:run_bg1 ~args:[ Value.Local j ])
      ()
  in
  { classes = act :: job :: util :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Async_executor sink ~insecure ~spec:!spec
        ~sink_class:j_cls }

(** AsyncTask subclass; flow continues in [doInBackground]. *)
let plant_async_task ctx ~sink ~insecure =
  let ty = chain_ty sink in
  let extra = ref [] and spec = ref "" in
  let t_cls = ctx.ns ^ ".task.UploadTask" in
  let fld = Jsig.field ~cls:t_cls ~name:"spec" ~ty in
  let task =
    Jclass.make ~super:(Some "android.os.AsyncTask") t_cls ~fields:[ fld ]
      ~methods:
        [ ctor_with_super ~params:[ ty ] ~cls:t_cls ~super:"android.os.AsyncTask"
            (fun mb -> B.iput mb (B.this mb) fld (Value.Local (B.param mb 0)));
          B.method_ ~cls:t_cls ~name:"doInBackground"
            ~params:[ Types.Array Types.object_ ] ~ret:Types.object_ (fun mb ->
              let v = B.iget mb (B.this mb) fld in
              emit_sink mb sink ~value:v;
              B.return_val mb (Value.Const Value.Null)) ]
  in
  let act, comps =
    make_activity ctx ~simple:"AtMainActivity"
      ~on_create:(fun mb ->
        let v, cs, s = spec_value ctx mb sink ~insecure in
        extra := cs;
        spec := s;
        let t = B.new_obj mb t_cls ~ctor_params:[ ty ] ~args:[ Value.Local v ] in
        let args =
          B.assign mb (Types.Array Types.object_)
            (Expr.New_array (Types.object_, Value.Const (Value.Int_c 0)))
        in
        ignore
          (B.invoke_ret mb ~base:t ~kind:Expr.Virtual ~callee:Api.async_task_execute
             ~args:[ Value.Local args ] ()))
      ()
  in
  { classes = act :: task :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Async_task sink ~insecure ~spec:!spec
        ~sink_class:t_cls }

(** Sink under a <clinit>; reachability decided by the recursive class-use
    search.  [reachable] controls whether an entry class transitively uses
    the initialized class. *)
let plant_static_init ?(reachable = true) ctx ~sink ~insecure =
  let extra = ref [] and spec = ref "" in
  let api_cls = ctx.ns ^ ".internal.ApiClient" in
  let model_cls = ctx.ns ^ ".model.AdModel" in
  let cfg_fld = Jsig.field ~cls:api_cls ~name:"CONFIG" ~ty:Types.string_ in
  let setup =
    Jsig.meth ~cls:api_cls ~name:"setup" ~params:[ chain_ty sink ] ~ret:void
  in
  (* spec_value needs a builder; create the <clinit> which embeds it *)
  let clinit =
    B.clinit ~cls:api_cls (fun mb ->
        let v, cs, s = spec_value ctx mb sink ~insecure in
        extra := cs;
        spec := s;
        let c = B.const_str mb "configured" in
        B.sput mb cfg_fld (Value.Local c);
        B.call_static mb ~callee:setup ~args:[ Value.Local v ])
  in
  let api =
    Jclass.make api_cls ~fields:[ cfg_fld ]
      ~methods:
        [ clinit;
          B.method_
            ~access:{ B.static_access with Jmethod.is_private = true; is_public = false }
            ~cls:api_cls ~name:"setup" ~params:[ chain_ty sink ] ~ret:void
            (fun mb -> emit_sink mb sink ~value:(B.param mb 0)) ]
  in
  let model =
    Jclass.make model_cls
      ~methods:
        [ plain_ctor ~cls:model_cls ~super:"java.lang.Object";
          B.method_ ~cls:model_cls ~name:"load" ~params:[] ~ret:void (fun mb ->
              ignore (B.sget mb cfg_fld)) ]
  in
  let act, comps =
    make_activity ctx ~simple:"CiMainActivity"
      ~on_create:(fun mb ->
        if reachable then begin
          let m = B.new_obj mb model_cls ~ctor_params:[] ~args:[] in
          B.call_virtual mb ~base:m
            ~callee:(Jsig.meth ~cls:model_cls ~name:"load" ~params:[] ~ret:void)
            ~args:[]
        end
        else ignore (B.const_int mb 0))
      ()
  in
  { classes = act :: api :: model :: !extra;
    components = comps;
    planted =
      mk_planted ~reachable ctx Shape.Static_init sink ~insecure ~spec:!spec
        ~sink_class:api_cls }

(** Sink parameter read from a static field whose value is only assigned in
    an off-path <clinit> (Fig. 6's MP3LocalServer.PORT pattern). *)
let plant_clinit_field ctx ~sink ~insecure =
  let ty = chain_ty sink in
  let srv_cls = ctx.ns ^ ".net.Mp3Server" in
  let spec_fld = Jsig.field ~cls:srv_cls ~name:"SPEC" ~ty in
  let spec = ref "" in
  let extra = ref [] in
  let clinit =
    B.clinit ~cls:srv_cls (fun mb ->
        let v, cs, s = spec_value ctx mb sink ~insecure in
        extra := cs;
        spec := s;
        B.sput mb spec_fld (Value.Local v))
  in
  let server =
    Jclass.make srv_cls ~fields:[ spec_fld ]
      ~methods:
        [ plain_ctor ~cls:srv_cls ~super:"java.lang.Object";
          clinit;
          B.method_ ~access:B.static_access ~cls:srv_cls ~name:"startServer"
            ~params:[] ~ret:void (fun mb ->
              let v = B.sget mb spec_fld in
              emit_sink mb sink ~value:v) ]
  in
  let act, comps =
    make_activity ctx ~simple:"NetMainActivity"
      ~on_create:(fun mb ->
        B.call_static mb
          ~callee:(Jsig.meth ~cls:srv_cls ~name:"startServer" ~params:[] ~ret:void)
          ~args:[])
      ()
  in
  { classes = act :: server :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Clinit_field sink ~insecure ~spec:!spec
        ~sink_class:srv_cls }

(** Explicit ICC: the activity starts a service with an Intent extra; the
    sink consumes the extra in [onStartCommand]. *)
let plant_icc_explicit ctx ~sink ~insecure =
  (* ICC carries strings; only string-parameter sinks use this shape *)
  let svc_cls = ctx.ns ^ ".fota.HttpServerService" in
  let extra = ref [] and spec = ref "" in
  let svc =
    Jclass.make ~super:(Some "android.app.Service") svc_cls
      ~methods:
        [ plain_ctor ~cls:svc_cls ~super:"android.app.Service";
          B.method_ ~cls:svc_cls ~name:"onStartCommand"
            ~params:[ Api.intent_t; Types.Int; Types.Int ] ~ret:Types.Int
            (fun mb ->
              let intent = B.param mb 0 in
              let key = B.const_str mb "spec" in
              let v =
                B.invoke_ret mb ~base:intent ~kind:Expr.Virtual
                  ~callee:Api.intent_get_string_extra ~args:[ Value.Local key ] ()
              in
              emit_sink mb sink ~value:v;
              B.return_val mb (Value.Const (Value.Int_c 1))) ]
  in
  let act, comps =
    make_activity ctx ~simple:"IccMainActivity"
      ~on_create:(fun mb ->
        let v, cs, s = spec_value ctx mb sink ~insecure in
        extra := cs;
        spec := s;
        let cls_c = B.const_class mb svc_cls in
        let intent =
          B.new_obj mb "android.content.Intent"
            ~ctor_params:[ Api.context_t; Types.Object "java.lang.Class" ]
            ~args:[ Value.Local (B.this mb); Value.Local cls_c ]
        in
        let key = B.const_str mb "spec" in
        ignore
          (B.invoke_ret mb ~base:intent ~kind:Expr.Virtual
             ~callee:Api.intent_put_extra ~args:[ Value.Local key; Value.Local v ]
             ());
        B.invoke mb ~base:(B.this mb) ~kind:Expr.Virtual
          ~callee:Api.context_start_service ~args:[ Value.Local intent ] ())
      ()
  in
  let comps = Component.make ~kind:Component.Service svc_cls :: comps in
  { classes = act :: svc :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Icc_explicit sink ~insecure ~spec:!spec
        ~sink_class:svc_cls }

(** Implicit ICC via a broadcast action string. *)
let plant_icc_implicit ctx ~sink ~insecure =
  let action = ctx.ns ^ ".ACTION_CONFIGURE" in
  let rcv_cls = ctx.ns ^ ".rcv.ConfigReceiver" in
  let extra = ref [] and spec = ref "" in
  let rcv =
    Jclass.make ~super:(Some "android.content.BroadcastReceiver") rcv_cls
      ~methods:
        [ plain_ctor ~cls:rcv_cls ~super:"android.content.BroadcastReceiver";
          B.method_ ~cls:rcv_cls ~name:"onReceive"
            ~params:[ Api.context_t; Api.intent_t ] ~ret:void (fun mb ->
              let intent = B.param mb 1 in
              let key = B.const_str mb "spec" in
              let v =
                B.invoke_ret mb ~base:intent ~kind:Expr.Virtual
                  ~callee:Api.intent_get_string_extra ~args:[ Value.Local key ] ()
              in
              emit_sink mb sink ~value:v) ]
  in
  let act, comps =
    make_activity ctx ~simple:"BcMainActivity"
      ~on_create:(fun mb ->
        let v, cs, s = spec_value ctx mb sink ~insecure in
        extra := cs;
        spec := s;
        let intent =
          B.new_obj mb "android.content.Intent" ~ctor_params:[] ~args:[]
        in
        let act_s = B.const_str mb action in
        ignore
          (B.invoke_ret mb ~base:intent ~kind:Expr.Virtual
             ~callee:Api.intent_set_action ~args:[ Value.Local act_s ] ());
        let key = B.const_str mb "spec" in
        ignore
          (B.invoke_ret mb ~base:intent ~kind:Expr.Virtual
             ~callee:Api.intent_put_extra ~args:[ Value.Local key; Value.Local v ]
             ());
        B.invoke mb ~base:(B.this mb) ~kind:Expr.Virtual
          ~callee:Api.context_send_broadcast ~args:[ Value.Local intent ] ())
      ()
  in
  let comps =
    Component.make ~kind:Component.Receiver ~actions:[ action ] rcv_cls :: comps
  in
  { classes = act :: rcv :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Icc_implicit sink ~insecure ~spec:!spec
        ~sink_class:rcv_cls }

(** Value stored into an activity field in [onCreate], consumed by the sink
    in [onResume] — exercises the lifecycle-handler search. *)
let plant_lifecycle_field ctx ~sink ~insecure =
  let ty = chain_ty sink in
  let act_cls = ctx.ns ^ ".LcMainActivity" in
  let fld = Jsig.field ~cls:act_cls ~name:"spec" ~ty in
  let extra = ref [] and spec = ref "" in
  let on_resume =
    B.method_ ~cls:act_cls ~name:"onResume" ~params:[] ~ret:void (fun mb ->
        let v = B.iget mb (B.this mb) fld in
        emit_sink mb sink ~value:v)
  in
  let klass =
    Jclass.make ~super:(Some "android.app.Activity") act_cls ~fields:[ fld ]
      ~methods:
        [ plain_ctor ~cls:act_cls ~super:"android.app.Activity";
          B.method_ ~cls:act_cls ~name:"onCreate" ~params:[ Api.bundle_t ]
            ~ret:void (fun mb ->
              let v, cs, s = spec_value ctx mb sink ~insecure in
              extra := cs;
              spec := s;
              B.iput mb (B.this mb) fld (Value.Local v));
          on_resume ]
  in
  { classes = klass :: !extra;
    components = [ Component.make ~kind:Component.Activity act_cls ];
    planted =
      mk_planted ctx Shape.Lifecycle_field sink ~insecure ~spec:!spec
        ~sink_class:act_cls }

(** Sink inside a method that nothing ever calls. *)
let plant_dead_code ctx ~sink ~insecure =
  let cls = ctx.ns ^ ".dead.DeadHelper" in
  let extra = ref [] and spec = ref "" in
  let klass =
    Jclass.make cls
      ~methods:
        [ plain_ctor ~cls ~super:"java.lang.Object";
          B.method_ ~cls ~name:"unused" ~params:[] ~ret:void (fun mb ->
              let v, cs, s = spec_value ctx mb sink ~insecure in
              extra := cs;
              spec := s;
              (* two sink calls in one method (the if-else pattern of
                 Sec. IV-F): the second hits the sink-API-call cache *)
              emit_sink mb sink ~value:v;
              emit_sink mb sink ~value:v) ]
  in
  (* a registered activity exists but never references DeadHelper *)
  let act, comps =
    make_activity ctx ~simple:"DdMainActivity"
      ~on_create:(fun mb -> ignore (B.const_int mb 0))
      ()
  in
  { classes = act :: klass :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Dead_code sink ~insecure ~spec:!spec ~sink_class:cls }

(** Activity subclass with a sink flow that is NOT registered in the
    manifest — the deactivated-component false-positive class. *)
let plant_unregistered ctx ~sink ~insecure =
  let extra = ref [] and spec = ref "" in
  let ghost, _ =
    make_activity ctx ~simple:"ghost.TstoreActivation" ~register:false
      ~on_create:(fun mb ->
        let v, cs, s = spec_value ctx mb sink ~insecure in
        extra := cs;
        spec := s;
        emit_sink mb sink ~value:v)
      ()
  in
  let act, comps =
    make_activity ctx ~simple:"UrMainActivity"
      ~on_create:(fun mb -> ignore (B.const_int mb 0))
      ()
  in
  { classes = act :: ghost :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Unregistered_component sink ~insecure ~spec:!spec
        ~sink_class:(ctx.ns ^ ".ghost.TstoreActivation") }

(** Sink inside one of the library packages Amandroid's liblist skips. *)
let skipped_lib_packages =
  [ "com.tencent.smtt.utils";
    "com.amazon.identity.frc.helper";
    "com.facebook.ads.internal";
    "com.flurry.sdk";
    "com.google.ads.util" ]

let plant_skipped_lib ctx ~sink ~insecure =
  let pkg = Rng.choose ctx.rng skipped_lib_packages in
  (* suffix the class with the namespace tail to keep names unique per plant *)
  let tag =
    String.map (fun c -> if c = '.' then '_' else c) ctx.ns
  in
  let cls = Printf.sprintf "%s.Helper_%s" pkg tag in
  let ty = chain_ty sink in
  let extra = ref [] and spec = ref "" in
  let lib =
    Jclass.make cls
      ~methods:
        [ plain_ctor ~cls ~super:"java.lang.Object";
          B.method_ ~access:B.static_access ~cls ~name:"encrypt" ~params:[ ty ]
            ~ret:void (fun mb -> emit_sink mb sink ~value:(B.param mb 0)) ]
  in
  let act, comps =
    make_activity ctx ~simple:"LibMainActivity"
      ~on_create:(fun mb ->
        let v, cs, s = spec_value ctx mb sink ~insecure in
        extra := cs;
        spec := s;
        B.call_static mb
          ~callee:(Jsig.meth ~cls ~name:"encrypt" ~params:[ ty ] ~ret:void)
          ~args:[ Value.Local v ])
      ()
  in
  { classes = act :: lib :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Skipped_lib sink ~insecure ~spec:!spec ~sink_class:cls }

(** The documented BackDroid FN: the sink API is only invoked through an app
    subclass of the sink's system class, so the initial search for the system
    signature finds nothing. *)
let plant_subclassed_sink ctx ~sink ~insecure =
  (* only meaningful for instance sinks on subclassable classes *)
  let sink_sys_cls = sink.Sinks.msig.Jsig.cls in
  let sub_cls = ctx.ns ^ ".http.DefaultSSLSocketFactory" in
  let ty = chain_ty sink in
  let extra = ref [] and spec = ref "" in
  let sub =
    Jclass.make ~super:(Some sink_sys_cls) sub_cls
      ~methods:[ plain_ctor ~cls:sub_cls ~super:sink_sys_cls ]
  in
  let act, comps =
    make_activity ctx ~simple:"SubMainActivity"
      ~on_create:(fun mb ->
        let v, cs, s = spec_value ctx mb sink ~insecure in
        extra := cs;
        spec := s;
        let f = B.new_obj mb sub_cls ~ctor_params:[] ~args:[] in
        (* the invocation is emitted against the subclass signature *)
        B.call_virtual mb ~base:f
          ~callee:{ sink.Sinks.msig with Jsig.cls = sub_cls }
          ~args:[ Value.Local v ])
      ()
  in
  ignore ty;
  { classes = act :: sub :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Subclassed_sink sink ~insecure ~spec:!spec
        ~sink_class:sub_cls }

(** Mutually recursive methods on the sink path: [process] and [retry] call
    each other, and [wrap] recurses on itself behind a Phi, so both the
    cross-method and the inner dead-loop detectors of Sec. IV-F fire while
    the dataflow still resolves through the Phi's second operand. *)
let plant_recursive ctx ~sink ~insecure =
  let ty = chain_ty sink in
  let w_cls = ctx.ns ^ ".rec.Worker" in
  let extra = ref [] and spec = ref "" in
  let wrap_sig =
    Jsig.meth ~cls:w_cls ~name:"wrap" ~params:[ ty; Types.Int ] ~ret:ty
  in
  let process_sig =
    Jsig.meth ~cls:w_cls ~name:"process" ~params:[ ty; Types.Int ] ~ret:void
  in
  let retry_sig =
    Jsig.meth ~cls:w_cls ~name:"retry" ~params:[ ty; Types.Int ] ~ret:void
  in
  let worker =
    Jclass.make w_cls
      ~methods:
        [ B.method_ ~access:B.static_access ~cls:w_cls ~name:"wrap"
            ~params:[ ty; Types.Int ] ~ret:ty (fun mb ->
              let s = B.param mb 0 and n = B.param mb 1 in
              let n' =
                B.assign mb Types.Int
                  (Expr.Binop (Expr.Sub, Value.Local n, Value.Const (Value.Int_c 1)))
              in
              let r1 =
                B.invoke_ret mb ~kind:Expr.Static ~callee:wrap_sig
                  ~args:[ Value.Local s; Value.Local n' ] ()
              in
              let ret = B.assign mb ty (Expr.Phi [ r1; s ]) in
              B.return_val mb (Value.Local ret));
          B.method_ ~access:B.static_access ~cls:w_cls ~name:"process"
            ~params:[ ty; Types.Int ] ~ret:void (fun mb ->
              let s = B.param mb 0 and n = B.param mb 1 in
              let v =
                B.invoke_ret mb ~kind:Expr.Static ~callee:wrap_sig
                  ~args:[ Value.Local s; Value.Local n ] ()
              in
              B.call_static mb ~callee:retry_sig
                ~args:[ Value.Local v; Value.Local n ]);
          B.method_ ~access:B.static_access ~cls:w_cls ~name:"retry"
            ~params:[ ty; Types.Int ] ~ret:void (fun mb ->
              let v = B.param mb 0 and n = B.param mb 1 in
              let n' =
                B.assign mb Types.Int
                  (Expr.Binop (Expr.Sub, Value.Local n, Value.Const (Value.Int_c 1)))
              in
              B.call_static mb ~callee:process_sig
                ~args:[ Value.Local v; Value.Local n' ];
              emit_sink mb sink ~value:v) ]
  in
  let act, comps =
    make_activity ctx ~simple:"RecMainActivity"
      ~on_create:(fun mb ->
        let v, cs, s = spec_value ctx mb sink ~insecure in
        extra := cs;
        spec := s;
        let three = B.const_int mb 3 in
        B.call_static mb ~callee:process_sig
          ~args:[ Value.Local v; Value.Local three ])
      ()
  in
  { classes = act :: worker :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Recursive_chain sink ~insecure ~spec:!spec
        ~sink_class:w_cls }

(** A group of [count] sink calls behind one shared utility class: every
    activity calls [CryptoHub.route], which fans out to per-sink [encI]
    methods.  Backtracking each sink re-searches [route]'s callers, so the
    search-command cache gets the repeated hits of Sec. IV-F. *)
let plant_shared_group ctx ~sink ~insecure ~count =
  let count = max 1 count in
  let ty = chain_ty sink in
  let hub_cls = ctx.ns ^ ".shared.CryptoHub" in
  let enc_sig i =
    Jsig.meth ~cls:hub_cls ~name:(Printf.sprintf "enc%d" i) ~params:[ ty ]
      ~ret:void
  in
  let route_sig =
    Jsig.meth ~cls:hub_cls ~name:"route" ~params:[ ty ] ~ret:void
  in
  let hub =
    Jclass.make hub_cls
      ~methods:
        (plain_ctor ~cls:hub_cls ~super:"java.lang.Object"
         :: B.method_ ~access:B.static_access ~cls:hub_cls ~name:"route"
              ~params:[ ty ] ~ret:void (fun mb ->
                let v = B.param mb 0 in
                for i = 0 to count - 1 do
                  B.call_static mb ~callee:(enc_sig i) ~args:[ Value.Local v ]
                done)
         :: List.init count (fun i ->
                B.method_ ~access:B.static_access ~cls:hub_cls
                  ~name:(Printf.sprintf "enc%d" i) ~params:[ ty ] ~ret:void
                  (fun mb -> emit_sink mb sink ~value:(B.param mb 0))))
  in
  let extra = ref [] and spec = ref "" in
  let acts =
    List.init count (fun i ->
        make_activity ctx ~simple:(Printf.sprintf "ShMainActivity%d" i)
          ~on_create:(fun mb ->
            let v, cs, s = spec_value ctx mb sink ~insecure in
            extra := cs @ !extra;
            spec := s;
            B.call_static mb ~callee:route_sig ~args:[ Value.Local v ])
          ())
  in
  let planted =
    List.init count (fun _ ->
        mk_planted ctx Shape.Shared_util sink ~insecure ~spec:!spec
          ~sink_class:hub_cls)
  in
  ( (hub :: List.map fst acts) @ !extra,
    List.concat_map snd acts,
    planted )

(** The sink's containing method is only ever invoked through reflection:
    [Class.forName(...); getMethod("enc"); invoke(...)].  Invisible to the
    signature searches (and to CHA) unless reflection resolution rewrites it
    into a direct call first. *)
let plant_reflective ctx ~sink ~insecure =
  let r_cls = ctx.ns ^ ".util.RCrypto" in
  let extra = ref [] and spec = ref "" in
  let crypto =
    Jclass.make r_cls
      ~methods:
        [ plain_ctor ~cls:r_cls ~super:"java.lang.Object";
          B.method_ ~access:B.static_access ~cls:r_cls ~name:"enc" ~params:[]
            ~ret:void (fun mb ->
              let v, cs, s = spec_value ctx mb sink ~insecure in
              extra := cs;
              spec := s;
              emit_sink mb sink ~value:v) ]
  in
  let act, comps =
    make_activity ctx ~simple:"RfMainActivity"
      ~on_create:(fun mb ->
        let cls_name = B.const_str mb r_cls in
        let c =
          B.invoke_ret mb ~kind:Expr.Static ~callee:Api.class_for_name
            ~args:[ Value.Local cls_name ] ()
        in
        let m_name = B.const_str mb "enc" in
        let m =
          B.invoke_ret mb ~base:c ~kind:Expr.Virtual ~callee:Api.class_get_method
            ~args:[ Value.Local m_name ] ()
        in
        let args =
          B.assign mb (Types.Array Types.object_)
            (Expr.New_array (Types.object_, Value.Const (Value.Int_c 0)))
        in
        ignore
          (B.invoke_ret mb ~base:m ~kind:Expr.Virtual ~callee:Api.method_invoke
             ~args:[ Value.Const Value.Null; Value.Local args ] ()))
      ()
  in
  { classes = act :: crypto :: !extra;
    components = comps;
    planted =
      mk_planted ctx Shape.Reflective_sink sink ~insecure ~spec:!spec
        ~sink_class:r_cls }

(** The cipher transformation string assembled at runtime with a
    StringBuilder ("AES" + "/ECB" + "/PKCS5Padding") — only the API models of
    the forward analysis can recover the full constant. *)
let plant_builder_spec ctx ~sink ~insecure =
  (* only meaningful for string-parameter sinks; callers pass the cipher *)
  let chain_cls = ctx.ns ^ ".util.BChain" in
  let chain_klass, chain_head =
    static_chain ~cls:chain_cls ~ty:Types.string_ ~n:2
      ~last:(fun mb p -> emit_sink mb sink ~value:p)
  in
  let spec_parts =
    if insecure then [ "AES"; "/ECB"; "/PKCS5Padding" ]
    else [ "AES"; "/GCM"; "/NoPadding" ]
  in
  let act, comps =
    make_activity ctx ~simple:"BsMainActivity"
      ~on_create:(fun mb ->
        let sb =
          B.new_obj mb "java.lang.StringBuilder" ~ctor_params:[] ~args:[]
        in
        let cur = ref sb in
        List.iter
          (fun part ->
             let p = B.const_str mb part in
             cur :=
               B.invoke_ret mb ~base:!cur ~kind:Expr.Virtual
                 ~callee:Api.string_builder_append ~args:[ Value.Local p ] ())
          spec_parts;
        let spec =
          B.invoke_ret mb ~base:!cur ~kind:Expr.Virtual
            ~callee:Api.string_builder_to_string ~args:[] ()
        in
        B.call_static mb ~callee:chain_head ~args:[ Value.Local spec ])
      ()
  in
  { classes = [ act; chain_klass ];
    components = comps;
    planted =
      mk_planted ctx Shape.Builder_spec sink ~insecure
        ~spec:(String.concat "" spec_parts) ~sink_class:chain_cls }

(** WebView configuration: the insecure variant enables JavaScript
    (setJavaScriptEnabled(1)) and installs a JavaScript bridge
    (addJavascriptInterface); the safe variant disables JavaScript and adds
    no bridge at all — the bridge rule is presence-based, so its sink must
    not even appear in the safe bytecode. *)
let plant_webview_misuse ctx ~sink ~insecure =
  ignore sink;
  let act, comps =
    make_activity ctx ~simple:"WvMainActivity"
      ~on_create:(fun mb ->
        let w = B.new_obj mb "android.webkit.WebView" ~ctor_params:[] ~args:[] in
        let b = B.const_int mb (if insecure then 1 else 0) in
        B.call_virtual mb ~base:w ~callee:Api.webview_set_javascript_enabled
          ~args:[ Value.Local b ];
        if insecure then begin
          let o = B.new_obj mb "java.lang.Object" ~ctor_params:[] ~args:[] in
          let name = B.const_str mb "bridge" in
          B.call_virtual mb ~base:w ~callee:Api.webview_add_javascript_interface
            ~args:[ Value.Local o; Value.Local name ]
        end)
      ()
  in
  { classes = [ act ];
    components = comps;
    planted =
      mk_planted ctx Shape.Webview_misuse Sinks.webview_js ~insecure
        ~spec:(if insecure then "1" else "0")
        ~sink_class:(ctx.ns ^ ".WvMainActivity") }

(** SQL injection: an exported activity runs [rawQuery] over a string read
    from its launching Intent (insecure — any outside app controls it) or
    over a constant query (safe).  The exported component has no in-app
    senders, so resolution relies on the exported-ICC fallback. *)
let plant_sql_injection ctx ~sink ~insecure =
  ignore sink;
  let act_cls = ctx.ns ^ ".QueryActivity" in
  let act, _ =
    make_activity ctx ~simple:"QueryActivity" ~register:false
      ~on_create:(fun mb ->
        let q =
          if insecure then begin
            let intent =
              B.invoke_ret mb ~base:(B.this mb) ~kind:Expr.Virtual
                ~callee:Api.activity_get_intent ~args:[] ()
            in
            let key = B.const_str mb "q" in
            B.invoke_ret mb ~base:intent ~kind:Expr.Virtual
              ~callee:Api.intent_get_string_extra ~args:[ Value.Local key ] ()
          end
          else B.const_str mb "SELECT * FROM items"
        in
        let db =
          B.new_obj mb "android.database.sqlite.SQLiteDatabase" ~ctor_params:[]
            ~args:[]
        in
        ignore
          (B.invoke_ret mb ~base:db ~kind:Expr.Virtual
             ~callee:Api.sqlite_raw_query
             ~args:[ Value.Local q; Value.Const Value.Null ] ()))
      ()
  in
  { classes = [ act ];
    components = [ Component.make ~exported:true ~kind:Component.Activity act_cls ];
    planted =
      mk_planted ctx Shape.Sql_injection Sinks.sql_query ~insecure
        ~spec:(if insecure then "intent:q" else "SELECT * FROM items")
        ~sink_class:act_cls }

(** Intent redirection: an exported proxy activity forwards its launching
    Intent verbatim to [startActivity] (insecure — a classic redirection
    proxy) or launches a fixed explicit in-app Intent (safe). *)
let plant_intent_redirect ctx ~sink ~insecure =
  ignore sink;
  let proxy_cls = ctx.ns ^ ".ProxyActivity" in
  let target_cls = ctx.ns ^ ".TargetActivity" in
  let target, _ =
    make_activity ctx ~simple:"TargetActivity" ~register:false
      ~on_create:(fun mb -> ignore (B.const_int mb 0))
      ()
  in
  let proxy, _ =
    make_activity ctx ~simple:"ProxyActivity" ~register:false
      ~on_create:(fun mb ->
        let intent =
          if insecure then
            B.invoke_ret mb ~base:(B.this mb) ~kind:Expr.Virtual
              ~callee:Api.activity_get_intent ~args:[] ()
          else begin
            let cls_c = B.const_class mb target_cls in
            B.new_obj mb "android.content.Intent"
              ~ctor_params:[ Api.context_t; Types.Object "java.lang.Class" ]
              ~args:[ Value.Local (B.this mb); Value.Local cls_c ]
          end
        in
        B.invoke mb ~base:(B.this mb) ~kind:Expr.Virtual
          ~callee:Api.context_start_activity ~args:[ Value.Local intent ] ())
      ()
  in
  { classes = [ proxy; target ];
    components =
      [ Component.make ~exported:true ~kind:Component.Activity proxy_cls;
        Component.make ~kind:Component.Activity target_cls ];
    planted =
      mk_planted ctx Shape.Intent_redirect Sinks.intent_redirect ~insecure
        ~spec:(if insecure then "launching-intent" else target_cls)
        ~sink_class:proxy_cls }

(* ------------------------------------------------------------------ *)

(** Plant one sink flow of the given shape. *)
let plant ctx shape ~sink ~insecure =
  match (shape : Shape.t) with
  | Direct -> plant_direct ctx ~sink ~insecure
  | Static_chain -> plant_static_chain ctx ~sink ~insecure
  | Child_class -> plant_child_class ctx ~sink ~insecure
  | Super_class -> plant_super_class ctx ~sink ~insecure
  | Interface_dispatch -> plant_interface ctx ~sink ~insecure
  | Callback -> plant_callback ctx ~sink ~insecure
  | Async_thread -> plant_async_thread ctx ~sink ~insecure
  | Async_executor -> plant_async_executor ctx ~sink ~insecure
  | Async_task -> plant_async_task ctx ~sink ~insecure
  | Static_init -> plant_static_init ctx ~sink ~insecure
  | Clinit_field -> plant_clinit_field ctx ~sink ~insecure
  | Icc_explicit -> plant_icc_explicit ctx ~sink ~insecure
  | Icc_implicit -> plant_icc_implicit ctx ~sink ~insecure
  | Lifecycle_field -> plant_lifecycle_field ctx ~sink ~insecure
  | Dead_code -> plant_dead_code ctx ~sink ~insecure
  | Unregistered_component -> plant_unregistered ctx ~sink ~insecure
  | Skipped_lib -> plant_skipped_lib ctx ~sink ~insecure
  | Subclassed_sink -> plant_subclassed_sink ctx ~sink ~insecure
  | Recursive_chain -> plant_recursive ctx ~sink ~insecure
  | Shared_util ->
    (* a single shared-group member degenerates to a group of one *)
    let classes, components, planted =
      plant_shared_group ctx ~sink ~insecure ~count:1
    in
    { classes; components; planted = List.hd planted }
  | Reflective_sink -> plant_reflective ctx ~sink ~insecure
  | Builder_spec -> plant_builder_spec ctx ~sink ~insecure
  | Webview_misuse -> plant_webview_misuse ctx ~sink ~insecure
  | Sql_injection -> plant_sql_injection ctx ~sink ~insecure
  | Intent_redirect -> plant_intent_redirect ctx ~sink ~insecure
