(* Tests for the whole-app baselines: detection parity, the documented
   Amandroid gaps (liblist, async edges, unregistered components), timeouts,
   and the FlowDroid CG-only builder. *)

module G = Appgen.Generator
module Shape = Appgen.Shape
module Sinks = Framework.Sinks
module Am = Baseline.Amandroid
module Detectors = Backdroid.Detectors

let make_app ?(filler = 4) ?(seed = 31) shape sink insecure =
  G.generate
    { G.default_config with
      G.seed;
      name = "com.btest." ^ Shape.to_string shape;
      filler_classes = filler;
      plants = [ { G.shape; sink; insecure } ] }

let run ?(cfg = Am.default_config) (app : G.app) =
  Am.analyze ~cfg ~program:app.program ~manifest:app.manifest ()

let insecure_count r = List.length (Am.insecure_findings r.Am.outcome)

let robust_cfg =
  { Am.default_config with Am.cg = Baseline.Callgraph.robust_config }

(* --- detection parity on simple shapes --- *)

let parity_shapes =
  [ Shape.Direct; Shape.Static_chain; Shape.Child_class; Shape.Super_class;
    Shape.Interface_dispatch; Shape.Async_thread; Shape.Icc_explicit;
    Shape.Lifecycle_field; Shape.Clinit_field ]

let parity_cases =
  List.map
    (fun shape ->
       Alcotest.test_case (Shape.to_string shape) `Quick (fun () ->
           let app = make_app shape Sinks.cipher true in
           let r = run app in
           Alcotest.(check int)
             (Shape.to_string shape ^ " detected by whole-app analysis")
             1 (insecure_count r)))
    parity_shapes

(* --- the documented gaps --- *)

let gap_cases =
  [ Alcotest.test_case "skipped library is a FN" `Quick (fun () ->
        let app = make_app Shape.Skipped_lib Sinks.cipher true in
        Alcotest.(check int) "missed due to liblist" 0 (insecure_count (run app));
        Alcotest.(check int) "found without liblist" 1
          (insecure_count (run ~cfg:robust_cfg app)));
    Alcotest.test_case "executor async flow is a FN" `Quick (fun () ->
        let app = make_app Shape.Async_executor Sinks.cipher true in
        Alcotest.(check int) "missed (no execute->run edge)" 0
          (insecure_count (run app));
        Alcotest.(check int) "found with robust async" 1
          (insecure_count (run ~cfg:robust_cfg app)));
    Alcotest.test_case "asynctask flow is a FN" `Quick (fun () ->
        let app = make_app Shape.Async_task Sinks.cipher true in
        Alcotest.(check int) "missed" 0 (insecure_count (run app));
        Alcotest.(check int) "found with robust async" 1
          (insecure_count (run ~cfg:robust_cfg app)));
    Alcotest.test_case "onClick callback is a FN" `Quick (fun () ->
        let app = make_app Shape.Callback Sinks.cipher true in
        Alcotest.(check int) "missed" 0 (insecure_count (run app));
        Alcotest.(check int) "found with robust async" 1
          (insecure_count (run ~cfg:robust_cfg app)));
    Alcotest.test_case "unregistered component is a FP" `Quick (fun () ->
        let app = make_app Shape.Unregistered_component Sinks.ssl_factory true in
        Alcotest.(check int) "reported although deactivated" 1
          (insecure_count (run app));
        Alcotest.(check int) "not reported with precise entries" 0
          (insecure_count (run ~cfg:robust_cfg app)));
    Alcotest.test_case "subclassed sink detected (CHA resolves it)" `Quick
      (fun () ->
        let app = make_app Shape.Subclassed_sink Sinks.ssl_factory true in
        Alcotest.(check int) "whole-app analysis sees through the subclass" 1
          (insecure_count (run app)));
    Alcotest.test_case "dead code not reported" `Quick (fun () ->
        let app = make_app Shape.Dead_code Sinks.cipher true in
        Alcotest.(check int) "dead code skipped" 0 (insecure_count (run app))) ]

(* --- timeout and error behaviour --- *)

let failure_cases =
  [ Alcotest.test_case "expired deadline times out" `Quick (fun () ->
        let app = make_app ~filler:60 Shape.Direct Sinks.cipher true in
        let cfg =
          { Am.default_config with Am.deadline = Some (Unix.gettimeofday () -. 1.0) }
        in
        (match (run ~cfg app).Am.outcome with
         | Am.Timed_out -> ()
         | Am.Completed _ -> Alcotest.fail "expected timeout"
         | Am.Errored e -> Alcotest.fail ("unexpected error " ^ e)));
    Alcotest.test_case "generous deadline completes" `Quick (fun () ->
        let app = make_app Shape.Direct Sinks.cipher true in
        let cfg =
          { Am.default_config with
            Am.deadline = Some (Unix.gettimeofday () +. 60.0) }
        in
        (match (run ~cfg app).Am.outcome with
         | Am.Completed _ -> ()
         | Am.Timed_out -> Alcotest.fail "unexpected timeout"
         | Am.Errored e -> Alcotest.fail ("unexpected error " ^ e)));
    Alcotest.test_case "error injection is deterministic" `Quick (fun () ->
        let app = make_app Shape.Direct Sinks.cipher true in
        let cfg = { Am.default_config with Am.error_rate = 1.0 } in
        (match (run ~cfg app).Am.outcome with
         | Am.Errored _ -> ()
         | _ -> Alcotest.fail "expected simulated error");
        match (run ~cfg app).Am.outcome with
        | Am.Errored _ -> ()
        | _ -> Alcotest.fail "expected the same error on re-run") ]

(* --- call graph --- *)

let cg_cases =
  [ Alcotest.test_case "filler dispatch inflates CG edges" `Quick (fun () ->
        let small = make_app ~filler:5 ~seed:8 Shape.Direct Sinks.cipher true in
        let big = make_app ~filler:40 ~seed:8 Shape.Direct Sinks.cipher true in
        let e n (app : G.app) =
          let cg = Baseline.Callgraph.build app.program app.manifest in
          ignore n;
          cg.Baseline.Callgraph.edge_count
        in
        let es = e "small" small and eb = e "big" big in
        Alcotest.(check bool)
          (Printf.sprintf "edges grow superlinearly (%d vs %d)" es eb)
          true
          (eb > 4 * es));
    Alcotest.test_case "flowdroid CG counts contexts" `Quick (fun () ->
        let app = make_app ~filler:10 Shape.Direct Sinks.cipher true in
        let r = Baseline.Flowdroid_cg.build app.program app.manifest in
        Alcotest.(check bool) "methods reachable" true
          (r.Baseline.Flowdroid_cg.methods > 10);
        Alcotest.(check bool) "contexts >= methods" true
          (r.Baseline.Flowdroid_cg.contexts >= r.Baseline.Flowdroid_cg.methods));
    Alcotest.test_case "flowdroid CG times out on expired deadline" `Quick
      (fun () ->
        let app = make_app ~filler:30 Shape.Direct Sinks.cipher true in
        let cfg =
          { Baseline.Flowdroid_cg.default_config with
            Baseline.Flowdroid_cg.deadline = Some (Unix.gettimeofday () -. 1.0) }
        in
        match Baseline.Flowdroid_cg.build ~cfg app.program app.manifest with
        | exception Baseline.Flowdroid_cg.Timeout -> ()
        | _ -> Alcotest.fail "expected timeout");
    Alcotest.test_case "liblist matcher" `Quick (fun () ->
        Alcotest.(check bool) "tencent skipped" true
          (Baseline.Liblist.skipped "com.tencent.smtt.utils.LogFileUtils");
        Alcotest.(check bool) "prefix only at package boundary" false
          (Baseline.Liblist.skipped "com.tencentish.Foo");
        Alcotest.(check bool) "app code kept" false
          (Baseline.Liblist.skipped "com.example.app.Main")) ]


(* --- the CryptoGuard-style intra-procedural comparator --- *)

let cg_insecure app =
  List.length
    (Baseline.Cryptoguard.insecure_findings
       (Baseline.Cryptoguard.analyze (app : G.app).program))

let cryptoguard_cases =
  [ Alcotest.test_case "misses inter-procedural flows" `Quick (fun () ->
        (* the ECB constant lives in the caller: intra-procedural FN *)
        let app = make_app Shape.Direct Sinks.cipher true in
        Alcotest.(check int) "inter-procedural flow missed" 0 (cg_insecure app);
        Alcotest.(check int) "BackDroid finds it" 1
          (List.length
             (Backdroid.Driver.insecure_reports
                (Backdroid.Driver.analyze ~dex:app.dex ~manifest:app.manifest ()))));
    Alcotest.test_case "flags dead code (no reachability)" `Quick (fun () ->
        (* dead-code sinks have the constant in the same method: CryptoGuard
           reports them although they can never execute *)
        let app = make_app Shape.Dead_code Sinks.cipher true in
        Alcotest.(check bool) "dead code flagged (FP)" true (cg_insecure app > 0));
    Alcotest.test_case "resolves same-method stringbuilder specs" `Quick
      (fun () ->
        (* reflective-sink apps keep the constant inside the sink method *)
        let app = make_app Shape.Reflective_sink Sinks.cipher true in
        Alcotest.(check int) "same-method constant resolved" 1 (cg_insecure app));
    Alcotest.test_case "secure same-method spec stays clean" `Quick (fun () ->
        let app = make_app Shape.Reflective_sink Sinks.cipher false in
        Alcotest.(check int) "no insecure" 0 (cg_insecure app)) ]

let suites =
  [ "baseline.parity", parity_cases;
    "baseline.gaps", gap_cases;
    "baseline.failures", failure_cases;
    "baseline.cg", cg_cases;
    "baseline.cryptoguard", cryptoguard_cases ]
