lib/ir/program.ml: Hashtbl Jclass Jmethod Jsig List Option String
