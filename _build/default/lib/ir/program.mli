(** A whole program: the class table plus hierarchy queries and (CHA-style)
    virtual-dispatch resolution.  This is the "program analysis space" side of
    BackDroid; the "bytecode search space" is derived from it by
    {!module:Dex.Disasm}. *)

type t = {
  classes : (string, Jclass.t) Hashtbl.t;
  mutable subclass_cache : (string, string list) Hashtbl.t option;
  dispatch_cache : (string * string, (string * Jmethod.t) list) Hashtbl.t;
}
val create : unit -> t
val add_class : t -> Jclass.t -> unit
val of_classes : Jclass.t list -> t
val find_class : t -> string -> Jclass.t option
val iter_classes : t -> (Jclass.t -> unit) -> unit
val fold_classes : t -> (Jclass.t -> 'a -> 'a) -> 'a -> 'a
val app_classes : t -> Jclass.t list
val find_method : t -> Jsig.meth -> Jmethod.t option

(** Walk up the superclass chain starting from (and excluding) [name]. *)
val superclasses : t -> string -> string list

(** All interfaces implemented by [name], transitively (through both the
    superclass chain and super-interfaces). *)
val interfaces_of : t -> string -> string list
val rebuild_subclass_cache : t -> (string, string list) Hashtbl.t
val direct_subclasses : t -> string -> string list

(** All strict subclasses (and, for interfaces, implementers) of [name]. *)
val subclasses_transitive : t -> string -> string list
val is_subclass_of : t -> sub:String.t -> super:String.t -> bool

(** Resolve a sub-signature against [cls], walking up the hierarchy as the VM
    would.  Returns the concrete declaring method, if any. *)
val resolve_method :
  t -> string -> String.t -> (Jclass.t * Jmethod.t) option

(** CHA dispatch: all concrete methods an [invoke-virtual] /
    [invoke-interface] on static receiver type [cls] with [subsig] may reach.
    Considers the resolved method in [cls] itself plus every overriding
    definition in subclasses / implementers. *)
val dispatch_targets_uncached :
  t -> string -> String.t -> (string * Jmethod.t) list
val dispatch_targets :
  t -> string -> String.t -> (string * Jmethod.t) list

(** Does any strict subclass of [cls] override [subsig]?  Drives the paper's
    child-class signature-search rule (Sec. IV-A). *)
val subclass_overrides : t -> string -> String.t -> bool

(** Does [msig]'s method override a method declared in a superclass or
    interface of its class?  Such callees need the advanced search. *)
val overrides_foreign_declaration : t -> Jsig.meth -> bool

(** Total number of statements in app (non-system) method bodies — our
    size metric, standing in for APK megabytes. *)
val code_size : t -> int
val method_count : t -> int
val class_count : t -> int
