(* Tests for the telemetry layer (lib/obs): JSON fragment clamping, fd-safe
   artifact writes, span recording and per-domain shard merging, metrics
   determinism across pool widths, Chrome trace-event export invariants
   (B/E pairing, strict ts monotonicity, render/parse round-trip) and the
   self-time summary. *)

module Pool = Parallel.Pool
module G = Appgen.Generator

let qcheck = QCheck_alcotest.to_alcotest

(* Every test that installs a span sink or bumps metrics restores the
   global default state (no sink, metrics zeroed) so suite order does not
   matter. *)
let with_clean_obs f =
  Obs.Span.set_sink None;
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
        Obs.Span.set_sink None;
        Obs.Metrics.set_enabled true;
        Obs.Metrics.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Jsonf: non-finite floats must never reach an artifact                *)

let test_jsonf_clamp () =
  Alcotest.(check (float 0.0)) "nan -> 0" 0.0 (Obs.Jsonf.clamp Float.nan);
  Alcotest.(check (float 0.0)) "inf -> max_float" Float.max_float
    (Obs.Jsonf.clamp Float.infinity);
  Alcotest.(check (float 0.0)) "-inf -> -max_float" (-.Float.max_float)
    (Obs.Jsonf.clamp Float.neg_infinity);
  Alcotest.(check (float 1e-9)) "finite passes through" 42.5
    (Obs.Jsonf.clamp 42.5);
  List.iter
    (fun v ->
       let s = Obs.Jsonf.number v in
       Alcotest.(check bool)
         (Printf.sprintf "number %f has no inf/nan" v)
         false
         (List.exists
            (fun bad ->
               let rec mem i =
                 i + String.length bad <= String.length s
                 && (String.sub s i (String.length bad) = bad || mem (i + 1))
               in
               mem 0)
            [ "inf"; "nan" ]))
    [ Float.nan; Float.infinity; Float.neg_infinity; 1.5 ]

let test_jsonf_escape () =
  Alcotest.(check string) "quotes and backslash" "a\\\"b\\\\c"
    (Obs.Jsonf.escape "a\"b\\c");
  Alcotest.(check string) "control chars" "x\\n\\t\\u0001"
    (Obs.Jsonf.escape "x\n\t\001")

(* A non-finite resolution latency must not poison the --trace artifact. *)
let test_trace_event_nonfinite () =
  let ev =
    { Backdroid.Trace.strategy = "basic"; query = "q\"uote"; hits = 1;
      searches = 2; cached = 0; elapsed_us = Float.infinity }
  in
  let json = Backdroid.Trace.event_to_json ev in
  Alcotest.(check bool) "object shape" true
    (String.length json > 2 && json.[0] = '{'
     && json.[String.length json - 1] = '}');
  String.iteri
    (fun i c ->
       if c = 'i' || c = 'n' then
         (* "inf"/"nan" never appear outside the escaped query text *)
         Alcotest.(check bool)
           (Printf.sprintf "no bare non-finite literal at %d" i)
           false
           (i + 3 <= String.length json
            && (String.sub json i 3 = "inf" || String.sub json i 3 = "nan")))
    json

(* ------------------------------------------------------------------ *)
(* Io: with_file_out must not leak the fd when the writer raises        *)

let open_fds () = Array.length (Sys.readdir "/proc/self/fd")

exception Boom

let test_io_no_fd_leak () =
  let path = Filename.temp_file "obs_io" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      let before = open_fds () in
      (try
         Obs.Io.with_file_out path (fun oc ->
             output_string oc "partial";
             raise Boom)
       with Boom -> ());
      Alcotest.(check int) "fd count restored" before (open_fds ());
      Obs.Io.write_string path "done";
      Alcotest.(check int) "fd count after write_string" before (open_fds ()))

let test_ring_write_json_closes () =
  let ring = Backdroid.Trace.Ring.create () in
  Backdroid.Trace.Ring.sink ring
    { Backdroid.Trace.strategy = "basic"; query = "q"; hits = 0; searches = 0;
      cached = 0; elapsed_us = 1.0 };
  let path = Filename.temp_file "obs_ring" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      let before = open_fds () in
      Backdroid.Trace.Ring.write_json ring path;
      Alcotest.(check int) "fd closed" before (open_fds ());
      let ic = open_in path in
      let line = input_line ic in
      close_in ic;
      Alcotest.(check bool) "json written" true
        (String.length line > 0 && line.[0] = '{'))

(* ------------------------------------------------------------------ *)
(* Spans: disabled cost, nesting, pid scoping, exception emission       *)

let test_span_disabled_records_nothing () =
  with_clean_obs (fun () ->
      Alcotest.(check bool) "no sink installed" false (Obs.Span.enabled ());
      Obs.Span.with_span ~cat:"t" ~name:"noop" (fun () -> ());
      let r = Obs.Span.Recorder.create () in
      Alcotest.(check int) "recorder untouched" 0 (Obs.Span.Recorder.length r))

let test_span_nesting_and_attrs () =
  with_clean_obs (fun () ->
      let r = Obs.Span.Recorder.create () in
      Obs.Span.Recorder.install r;
      Obs.Span.with_span ~cat:"t" ~name:"outer" (fun () ->
          Obs.Span.with_span ~cat:"t" ~name:"inner"
            ~attrs:[ ("k", Obs.Span.Int 7) ]
            (fun () -> ()));
      Obs.Span.set_sink None;
      let spans = Obs.Span.Recorder.spans r in
      Alcotest.(check int) "two spans" 2 (List.length spans);
      let outer = List.find (fun s -> s.Obs.Span.name = "outer") spans in
      let inner = List.find (fun s -> s.Obs.Span.name = "inner") spans in
      Alcotest.(check bool) "inner nested in outer" true
        (inner.Obs.Span.t0_us >= outer.Obs.Span.t0_us
         && inner.Obs.Span.t1_us <= outer.Obs.Span.t1_us);
      Alcotest.(check bool) "attrs kept" true
        (inner.Obs.Span.attrs = [ ("k", Obs.Span.Int 7) ]))

let test_span_emitted_on_exception () =
  with_clean_obs (fun () ->
      let r = Obs.Span.Recorder.create () in
      Obs.Span.Recorder.install r;
      (try
         Obs.Span.with_span ~cat:"t" ~name:"raises" (fun () -> raise Boom)
       with Boom -> ());
      Obs.Span.set_sink None;
      Alcotest.(check int) "span still recorded" 1
        (Obs.Span.Recorder.length r))

let test_span_pid_scoping () =
  with_clean_obs (fun () ->
      let r = Obs.Span.Recorder.create () in
      Obs.Span.Recorder.install r;
      Obs.Span.with_pid 42 (fun () ->
          Obs.Span.with_span ~cat:"t" ~name:"in" (fun () -> ()));
      Obs.Span.with_span ~cat:"t" ~name:"out" (fun () -> ());
      Obs.Span.set_sink None;
      let spans = Obs.Span.Recorder.spans r in
      let pid name =
        (List.find (fun s -> s.Obs.Span.name = name) spans).Obs.Span.pid
      in
      Alcotest.(check int) "scoped pid" 42 (pid "in");
      Alcotest.(check int) "default pid restored" 0 (pid "out"))

let test_recorder_capacity_drops () =
  with_clean_obs (fun () ->
      let r = Obs.Span.Recorder.create ~capacity:16 () in
      Obs.Span.Recorder.install r;
      for _ = 1 to 40 do
        Obs.Span.with_span ~cat:"t" ~name:"s" (fun () -> ())
      done;
      Obs.Span.set_sink None;
      Alcotest.(check int) "bounded" 16 (Obs.Span.Recorder.length r);
      Alcotest.(check int) "overflow counted" 24 (Obs.Span.Recorder.dropped r);
      Obs.Span.Recorder.clear r;
      Alcotest.(check int) "cleared" 0 (Obs.Span.Recorder.length r))

(* One shard per pool domain, merged at snapshot: every span survives and
   the merged stream still satisfies the Chrome invariants. *)
let test_recorder_shards_across_pool () =
  with_clean_obs (fun () ->
      let r = Obs.Span.Recorder.create () in
      Obs.Span.Recorder.install r;
      let n = 500 in
      let out =
        Pool.with_pool ~jobs:4 (fun pool ->
            Pool.parallel_map pool
              (fun i ->
                 Obs.Span.with_span ~cat:"t" ~name:"task" (fun () -> i * 2))
              (Array.init n (fun i -> i)))
      in
      Obs.Span.set_sink None;
      Alcotest.(check int) "results intact" (n * (n - 1))
        (Array.fold_left ( + ) 0 out);
      let spans = Obs.Span.Recorder.spans r in
      Alcotest.(check int) "every span recorded" n (List.length spans);
      match Obs.Chrome.validate (Obs.Chrome.events_of_spans spans) with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("merged stream invalid: " ^ e))

(* ------------------------------------------------------------------ *)
(* Metrics: shard merge, reset, determinism across pool widths          *)

let test_metrics_shard_merge () =
  with_clean_obs (fun () ->
      let c = Obs.Metrics.counter "test.merge.counter" in
      let h = Obs.Metrics.histogram "test.merge.histo" in
      let n = 200 in
      Pool.with_pool ~jobs:4 (fun pool ->
          ignore
            (Pool.parallel_map pool
               (fun i ->
                  Obs.Metrics.add c i;
                  Obs.Metrics.observe h (float_of_int (1 lsl (i mod 8))))
               (Array.init n (fun i -> i))));
      let snap = Obs.Metrics.snapshot () in
      Alcotest.(check int) "counter merged across shards"
        (n * (n - 1) / 2)
        (List.assoc "test.merge.counter" snap.Obs.Metrics.counters);
      let histo = List.assoc "test.merge.histo" snap.Obs.Metrics.histograms in
      Alcotest.(check int) "histogram count merged" n
        histo.Obs.Metrics.h_count;
      Alcotest.(check int) "bucket counts sum to count" n
        (List.fold_left (fun a (_, c) -> a + c) 0 histo.Obs.Metrics.h_buckets);
      Alcotest.(check (float 0.0)) "min" 1.0 histo.Obs.Metrics.h_min;
      Alcotest.(check (float 0.0)) "max" 128.0 histo.Obs.Metrics.h_max)

let test_metrics_disabled_and_reset () =
  with_clean_obs (fun () ->
      let c = Obs.Metrics.counter "test.toggle.counter" in
      Obs.Metrics.incr c;
      Obs.Metrics.set_enabled false;
      Obs.Metrics.incr c;
      Obs.Metrics.set_enabled true;
      let snap = Obs.Metrics.snapshot () in
      Alcotest.(check int) "disabled bump dropped" 1
        (List.assoc "test.toggle.counter" snap.Obs.Metrics.counters);
      Obs.Metrics.reset ();
      let snap = Obs.Metrics.snapshot () in
      Alcotest.(check int) "reset zeroes" 0
        (List.assoc "test.toggle.counter" snap.Obs.Metrics.counters))

let test_metrics_json_renders () =
  with_clean_obs (fun () ->
      let h = Obs.Metrics.histogram "test.render.histo" in
      Obs.Metrics.observe h Float.nan;
      Obs.Metrics.observe h 3.0;
      let json = Obs.Metrics.render_json (Obs.Metrics.snapshot ()) in
      Alcotest.(check bool) "object shape" true
        (json.[0] = '{' && String.contains json ':');
      (* the nan sample lands in bucket 0 and must not leak into the sum *)
      let histo =
        List.assoc "test.render.histo"
          (Obs.Metrics.snapshot ()).Obs.Metrics.histograms
      in
      Alcotest.(check int) "both samples counted" 2 histo.Obs.Metrics.h_count;
      Alcotest.(check (float 0.0)) "nan clamped out of sum" 3.0
        histo.Obs.Metrics.h_sum)

let fixture_app ?(seed = 11) () =
  let rng = Appgen.Rng.create (seed * 31) in
  let plants =
    List.init 6 (fun _ -> Appgen.Corpus.random_plant rng ~insecure_p:0.5)
  in
  G.generate
    { G.default_config with
      G.seed;
      name = Printf.sprintf "com.obs.app%d" seed;
      filler_classes = 30;
      plants }

(* The headline determinism guarantee: the merged integer counters (and
   histogram totals) of one full analysis are identical at --jobs 1 and
   --jobs 4.  Timing-derived bucket placement may differ; counts may not. *)
let test_metrics_determinism_across_jobs () =
  with_clean_obs (fun () ->
      let app = fixture_app () in
      let snapshot_for jobs =
        Obs.Metrics.reset ();
        ignore
          (Backdroid.Driver.analyze
             ~cfg:{ Backdroid.Driver.default_config with Backdroid.Driver.jobs }
             ~dex:app.G.dex ~manifest:app.G.manifest ());
        Obs.Metrics.snapshot ()
      in
      let s1 = snapshot_for 1 in
      let s4 = snapshot_for 4 in
      List.iter2
        (fun (name1, v1) (name4, v4) ->
           Alcotest.(check string) "same counter set" name1 name4;
           Alcotest.(check int) ("counter " ^ name1) v1 v4)
        s1.Obs.Metrics.counters s4.Obs.Metrics.counters;
      List.iter2
        (fun (name1, h1) (name4, h4) ->
           Alcotest.(check string) "same histogram set" name1 name4;
           Alcotest.(check int)
             ("histogram count " ^ name1)
             h1.Obs.Metrics.h_count h4.Obs.Metrics.h_count)
        s1.Obs.Metrics.histograms s4.Obs.Metrics.histograms)

(* ------------------------------------------------------------------ *)
(* Chrome export: pairing, monotonicity, round-trip                     *)

let mk_span ?(pid = 0) ?(tid = 0) ?(attrs = []) ~name t0 t1 =
  { Obs.Span.cat = "t"; name; pid; tid; t0_us = t0; t1_us = t1; attrs }

let test_chrome_invariants () =
  let spans =
    [ mk_span ~name:"a" 0.0 100.0;
      mk_span ~name:"b" 10.0 40.0;
      mk_span ~name:"c" 50.0 90.0;
      mk_span ~tid:1 ~name:"d" 5.0 95.0;
      mk_span ~pid:1 ~tid:1 ~name:"e" 7.0 7.0 (* zero-length *) ]
  in
  let events = Obs.Chrome.events_of_spans spans in
  Alcotest.(check int) "two events per span" (2 * List.length spans)
    (List.length events);
  (match Obs.Chrome.validate events with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  let ts = List.map (fun e -> e.Obs.Chrome.e_ts) events in
  Alcotest.(check bool) "strictly increasing ts" true
    (List.for_all2 ( < ) (List.filteri (fun i _ -> i < List.length ts - 1) ts)
       (List.tl ts))

let test_chrome_validate_rejects () =
  let bad =
    [ { Obs.Chrome.e_ph = 'E'; e_ts = 1; e_pid = 0; e_tid = 0; e_cat = "t";
        e_name = "orphan"; e_args = [] } ]
  in
  (match Obs.Chrome.validate bad with
   | Ok () -> Alcotest.fail "orphan E accepted"
   | Error _ -> ());
  let unclosed =
    [ { Obs.Chrome.e_ph = 'B'; e_ts = 1; e_pid = 0; e_tid = 0; e_cat = "t";
        e_name = "open"; e_args = [] } ]
  in
  match Obs.Chrome.validate unclosed with
  | Ok () -> Alcotest.fail "unclosed B accepted"
  | Error _ -> ()

let test_chrome_round_trip () =
  let spans =
    [ mk_span ~name:"outer" ~attrs:[ ("q", Obs.Span.Str "x\"y") ] 0.0 50.0;
      mk_span ~name:"inner" 5.0 25.0;
      mk_span ~pid:2 ~tid:3 ~name:"other" 1.0 2.0 ]
  in
  let events = Obs.Chrome.events_of_spans spans in
  Alcotest.(check bool) "render/parse round-trips" true
    (Obs.Chrome.round_trips events);
  (* and the rendered file parses back after going through a real file *)
  let path = Filename.temp_file "obs_chrome" ".trace.json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      let n = Obs.Chrome.write ~pid_names:[ (0, "app") ] path spans in
      Alcotest.(check int) "write returns event count" (List.length events) n;
      let ic = open_in path in
      let len = in_channel_length ic in
      let content = really_input_string ic len in
      close_in ic;
      match Obs.Chrome.parse content with
      | Ok parsed ->
        Alcotest.(check int) "parsed event count" (List.length events)
          (List.length parsed)
      | Error e -> Alcotest.fail e)

(* Property: any *properly nested* span family per (pid, tid) — which is
   exactly what the recorder produces, since [with_span] scopes nest on one
   domain — exports to a stream where every B has its stack-ordered E and
   ts is strictly monotonic, in any recording order.  Random laminar
   families are built by recursive interval subdivision. *)
let gen_spans st =
  let names = [| "a"; "b"; "c" |] in
  let spans = ref [] in
  let rec build pid tid lo hi depth =
    if depth > 0 && hi -. lo >= 2.0 then begin
      let n = Random.State.int st 3 in
      let width = (hi -. lo) /. float_of_int (max 1 n) in
      for i = 0 to n - 1 do
        let a = lo +. (width *. float_of_int i) in
        let t0 = a +. Random.State.float st (width /. 4.0) in
        let t1 = a +. width -. Random.State.float st (width /. 4.0) in
        if t1 >= t0 then begin
          spans :=
            mk_span ~pid ~tid
              ~name:names.(Random.State.int st (Array.length names))
              t0 t1
            :: !spans;
          build pid tid t0 t1 (depth - 1)
        end
      done
    end
  in
  List.iter
    (fun (pid, tid) -> build pid tid 0.0 1000.0 (1 + Random.State.int st 3))
    [ (0, 0); (0, 1); (1, 0) ];
  (* recording order is arbitrary: shuffle before export *)
  let arr = Array.of_list !spans in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let prop_chrome_always_valid =
  QCheck.Test.make ~name:"chrome export valid for nested span families"
    ~count:200
    (QCheck.make gen_spans)
    (fun spans ->
       match Obs.Chrome.validate (Obs.Chrome.events_of_spans spans) with
       | Ok () -> true
       | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Summary: self time excludes direct children                          *)

let test_summary_self_time () =
  let spans =
    [ mk_span ~name:"parent" 0.0 100.0;
      mk_span ~name:"child" 10.0 40.0;
      mk_span ~name:"child" 50.0 70.0;
      mk_span ~name:"grandchild" 12.0 20.0 ]
  in
  let rows = Obs.Summary.compute spans in
  let row name = List.find (fun r -> r.Obs.Summary.r_name = name) rows in
  Alcotest.(check (float 1e-6)) "parent self = 100 - (30 + 20)" 50.0
    (row "parent").Obs.Summary.r_self_us;
  Alcotest.(check (float 1e-6)) "children self exclude grandchild" 42.0
    (row "child").Obs.Summary.r_self_us;
  Alcotest.(check int) "child count" 2 (row "child").Obs.Summary.r_count;
  Alcotest.(check (float 1e-6)) "child max" 30.0
    (row "child").Obs.Summary.r_max_us;
  Alcotest.(check (float 1e-6)) "grandchild self" 8.0
    (row "grandchild").Obs.Summary.r_self_us;
  Alcotest.(check bool) "render mentions every phase" true
    (let s = Obs.Summary.render rows in
     List.for_all
       (fun n ->
          let rec mem i =
            i + String.length n <= String.length s
            && (String.sub s i (String.length n) = n || mem (i + 1))
          in
          mem 0)
       [ "t/parent"; "t/child"; "t/grandchild" ])

let cases =
  [ Alcotest.test_case "jsonf clamps non-finite floats" `Quick test_jsonf_clamp;
    Alcotest.test_case "jsonf escapes strings" `Quick test_jsonf_escape;
    Alcotest.test_case "trace event json survives non-finite latency" `Quick
      test_trace_event_nonfinite;
    Alcotest.test_case "with_file_out closes fd on exception" `Quick
      test_io_no_fd_leak;
    Alcotest.test_case "ring write_json closes its fd" `Quick
      test_ring_write_json_closes;
    Alcotest.test_case "disabled spans record nothing" `Quick
      test_span_disabled_records_nothing;
    Alcotest.test_case "span nesting and attrs" `Quick
      test_span_nesting_and_attrs;
    Alcotest.test_case "span emitted when thunk raises" `Quick
      test_span_emitted_on_exception;
    Alcotest.test_case "pid is dynamically scoped" `Quick test_span_pid_scoping;
    Alcotest.test_case "recorder bounds shards and counts drops" `Quick
      test_recorder_capacity_drops;
    Alcotest.test_case "recorder merges per-domain shards" `Quick
      test_recorder_shards_across_pool;
    Alcotest.test_case "metrics merge across pool shards" `Quick
      test_metrics_shard_merge;
    Alcotest.test_case "metrics toggle and reset" `Quick
      test_metrics_disabled_and_reset;
    Alcotest.test_case "metrics json render and nan clamp" `Quick
      test_metrics_json_renders;
    Alcotest.test_case "metrics identical at jobs 1 and 4" `Quick
      test_metrics_determinism_across_jobs;
    Alcotest.test_case "chrome pairing and monotonic ts" `Quick
      test_chrome_invariants;
    Alcotest.test_case "chrome validate rejects broken streams" `Quick
      test_chrome_validate_rejects;
    Alcotest.test_case "chrome render/parse round-trip" `Quick
      test_chrome_round_trip;
    qcheck prop_chrome_always_valid;
    Alcotest.test_case "summary self-time profile" `Quick
      test_summary_self_time ]

let suites = [ ("obs.telemetry", cases) ]
