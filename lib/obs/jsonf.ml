(** Shared JSON fragment helpers for every hand-rolled writer in the tree
    (trace rings, Chrome traces, metrics snapshots, bench artifacts).

    The one rule that earns this module its existence: floats are clamped to
    finite values before rendering.  [Printf "%f"] happily prints [inf] and
    [nan], neither of which is valid JSON — a single non-finite elapsed time
    used to poison a whole trace file. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** Clamp a float to a finite value: [nan -> 0.], [±inf -> ±max_float]. *)
let clamp f =
  if Float.is_nan f then 0.0
  else if f = Float.infinity then Float.max_float
  else if f = Float.neg_infinity then -.Float.max_float
  else f

(** Render a float as a JSON number with [dec] decimals (default 1),
    clamping non-finite inputs first. *)
let number ?(dec = 1) f = Printf.sprintf "%.*f" dec (clamp f)

(** ["key": "escaped value"] *)
let str_field k v = Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)

(** ["key": n] *)
let int_field k n = Printf.sprintf "\"%s\":%d" (escape k) n

(** ["key": x.y], clamped *)
let num_field ?dec k f =
  Printf.sprintf "\"%s\":%s" (escape k) (number ?dec f)

(* -- Minimal field extraction ----------------------------------------- *)

(* Deliberately small line-oriented readers for exactly the writers above
   (one object per line, no nested strings containing the pattern): enough
   for the exporters' round-trip checks without a JSON dependency. *)

(** First ["key":"..."] string value on [line], unescaped. *)
let field_str line key =
  let pat = Printf.sprintf "\"%s\":\"" key in
  let n = String.length line and np = String.length pat in
  let rec find i =
    if i + np > n then None
    else if String.sub line i np = pat then begin
      let rec close j =
        if j >= n then j
        else if line.[j] = '"' && line.[j - 1] <> '\\' then j
        else close (j + 1)
      in
      let stop = close (i + np) in
      Some (Scanf.unescaped (String.sub line (i + np) (stop - i - np)))
    end
    else find (i + 1)
  in
  find 0

(** First ["key":123] integer value on [line]. *)
let field_int line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let n = String.length line and np = String.length pat in
  let rec find i =
    if i + np > n then None
    else if String.sub line i np = pat then begin
      let rec stop j =
        if j < n && (line.[j] = '-' || (line.[j] >= '0' && line.[j] <= '9'))
        then stop (j + 1)
        else j
      in
      let e = stop (i + np) in
      if e > i + np then int_of_string_opt (String.sub line (i + np) (e - i - np))
      else None
    end
    else find (i + 1)
  in
  find 0

(** First ["key":1.5] numeric value on [line]. *)
let field_float line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let n = String.length line and np = String.length pat in
  let rec find i =
    if i + np > n then None
    else if String.sub line i np = pat then begin
      let num c = c = '-' || c = '.' || (c >= '0' && c <= '9') in
      let rec stop j = if j < n && num line.[j] then stop (j + 1) else j in
      let e = stop (i + np) in
      if e > i + np then
        float_of_string_opt (String.sub line (i + np) (e - i - np))
      else None
    end
    else find (i + 1)
  in
  find 0
