examples/quickstart.ml: Backdroid Builder Dex Expr Fmt Framework Ir Jclass Jsig List Manifest Printf Program Types Value
