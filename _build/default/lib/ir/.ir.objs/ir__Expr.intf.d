lib/ir/expr.mli: Format Jsig Types Value
