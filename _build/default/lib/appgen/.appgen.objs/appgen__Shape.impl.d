lib/appgen/shape.ml:
