lib/framework/stubs.mli: Ir
