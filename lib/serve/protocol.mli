(** The daemon's length-prefixed binary wire protocol: a u32 LE frame
    length, then a payload of [u8 version, u8 opcode, fields] (ints LE,
    floats as IEEE-754 bits, strings length-prefixed, options tagged).
    Codec and framing are exposed separately so the codec can be
    property-tested without sockets. *)

val version : int

(** Hard upper bound on a frame payload; larger lengths are a protocol
    violation, not a big request. *)
val max_frame : int

type reject_reason =
  | Busy           (** admission-queue timeout: too many in-flight requests *)
  | Shutting_down  (** the daemon is draining *)

val reject_to_string : reject_reason -> string

(** How an analyze request was served: [Hit] straight off a resident
    engine, [Delta] after patching a resident engine in place, [Miss]
    after a snapshot load or cold build. *)
type cache_state = Hit | Delta | Miss

val cache_to_string : cache_state -> string

type request =
  | Analyze of {
      spec : Appspec.t;
      snapshot : string option;
          (** serve from / persist to this snapshot path *)
      time_limit_ms : float option;
          (** per-sink wall-clock budget for this request *)
    }
  | Query of {
      spec : Appspec.t;
      snapshot : string option;
      kind : string;    (** a {!Bytesearch.Query} constructor name *)
      operand : string;
    }
  | Stats
  | Shutdown

type response =
  | Analyzed of { text : string; cache : cache_state; wall_us : float }
      (** [text] is the full one-shot-CLI analyze transcript *)
  | Queried of { total : int; lines : string list; wall_us : float }
  | Stats_json of string
  | Rejected of reject_reason
  | Shutdown_ok
  | Error of string

(* -- codec (pure) ---------------------------------------------------- *)

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

(* -- framing over fds ------------------------------------------------ *)

val send_request : Unix.file_descr -> request -> unit
val send_response : Unix.file_descr -> response -> unit

(** [`Eof] on clean close at a frame boundary; [`Err] on malformed
    frames. *)
val recv_request : Unix.file_descr -> [ `Eof | `Ok of request | `Err of string ]

val recv_response : Unix.file_descr -> (response, string) result
