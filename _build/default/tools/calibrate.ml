(* Calibration utility: measures BackDroid vs the whole-app baselines over
   the first N apps of the modern-144 corpus and prints the tail fractions
   used to pick the experiment timeout (see DESIGN.md "time scaling").

   Usage: dune exec tools/calibrate.exe [N] [context-widening] *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 24 in
  let widen = try int_of_string Sys.argv.(2) with _ -> 128 in
  let cfgs = Appgen.Corpus.modern_144 ~count:n () in
  let am_cfg = { Baseline.Amandroid.default_config with Baseline.Amandroid.context_widening = widen } in
  let bds = ref [] and ams = ref [] and fds = ref [] in
  List.iter (fun (cfg : Appgen.Generator.config) ->
    let app = Appgen.Generator.generate cfg in
    let (_, tbd) = time (fun () -> Backdroid.Driver.analyze ~dex:app.dex ~manifest:app.manifest ()) in
    let (_, tam) = time (fun () -> Baseline.Amandroid.analyze ~cfg:am_cfg ~program:app.program ~manifest:app.manifest ()) in
    let (_, tfd) = time (fun () -> Baseline.Flowdroid_cg.build app.program app.manifest) in
    bds := tbd :: !bds; ams := tam :: !ams; fds := tfd :: !fds;
    Printf.printf "%-22s mb=%5.1f sinks=%3d  bd=%6.3f am=%6.3f fd=%6.3f\n%!"
      app.name (Appgen.Generator.size_mb ~stmts_per_mb:Appgen.Corpus.stmts_per_mb app)
      (List.length cfg.plants) tbd tam tfd)
    cfgs;
  let med xs = let s = List.sort compare xs in List.nth s (List.length s / 2) in
  Printf.printf "\nmedians: bd=%.4f am=%.4f fd=%.4f ratio=%.1f\n"
    (med !bds) (med !ams) (med !fds) (med !ams /. med !bds);
  let frac_over t xs = float_of_int (List.length (List.filter (fun x -> x > t) xs)) /. float_of_int (List.length xs) in
  List.iter (fun t -> Printf.printf "am > %.2fs: %.0f%%   fd > %.2fs: %.0f%%\n"
    t (100. *. frac_over t !ams) t (100. *. frac_over t !fds))
    [0.2; 0.3; 0.5; 0.75; 1.0; 1.5; 2.0]
