lib/core/reflection.mli: Framework Hashtbl Ir String
