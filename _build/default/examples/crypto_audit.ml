(* Crypto audit: generate a small corpus of apps and vet them for ECB misuse
   (the paper's first detection problem), comparing BackDroid against the
   whole-app baseline and scoring against the generator's ground truth.

   Run with: dune exec examples/crypto_audit.exe *)

module G = Appgen.Generator
module Shape = Appgen.Shape
module Sinks = Framework.Sinks

let shapes =
  [ Shape.Direct; Shape.Static_chain; Shape.Callback; Shape.Async_thread;
    Shape.Async_executor; Shape.Super_class; Shape.Icc_explicit;
    Shape.Lifecycle_field; Shape.Dead_code; Shape.Skipped_lib ]

let () =
  Printf.printf "%-18s %-9s %-10s %-10s %-10s %s\n" "shape" "insecure"
    "BackDroid" "Baseline" "BD-time" "ground truth";
  List.iteri
    (fun i shape ->
       List.iter
         (fun insecure ->
            let app =
              G.generate
                { G.default_config with
                  G.seed = 100 + i;
                  name = Printf.sprintf "com.audit.%s" (Shape.to_string shape);
                  filler_classes = 12;
                  plants = [ { G.shape; sink = Sinks.cipher; insecure } ] }
            in
            let bd, _ = Evalharness.Runner.run_backdroid app in
            let am, _ = Evalharness.Runner.run_amandroid ~timeout_s:5.0 app in
            let planted = List.hd app.G.planted in
            let truth =
              if planted.Appgen.Templates.insecure
                 && planted.Appgen.Templates.reachable
              then "vulnerable"
              else "clean"
            in
            Printf.printf "%-18s %-9b %-10s %-10s %-10s %s\n"
              (Shape.to_string shape) insecure
              (if bd.Evalharness.Runner.insecure > 0 then "FLAGGED" else "-")
              (if am.Evalharness.Runner.insecure > 0 then "FLAGGED" else "-")
              (Printf.sprintf "%.3fs" bd.Evalharness.Runner.seconds)
              truth)
         [ true; false ])
    shapes
