(** Structured trace events for the caller-resolution broker.

    Every {!Resolver.callers} resolution emits one event describing the
    strategy that ran, the query it issued, how many caller records came
    back, how many engine searches it cost (and how many of those were
    served by the Sec. IV-F command cache), and the wall-clock cost.  The
    sink is pluggable: {!log_sink} (the default) forwards to [Log.debug],
    {!Ring.sink} records into a bounded in-memory buffer the CLI dumps as
    JSON ([--trace out.json]) and the bench aggregates into per-strategy
    latency columns. *)

type event = {
  strategy : string;   (** basic | advanced | clinit | icc | lifecycle *)
  query : string;      (** human-readable query / callee description *)
  hits : int;          (** caller records resolved *)
  searches : int;      (** engine search commands issued *)
  cached : int;        (** of which served from the command cache *)
  elapsed_us : float;  (** wall-clock resolution cost *)
}

type sink = event -> unit

let null (_ : event) = ()

let log_sink ev =
  Log.debug (fun l ->
      l "resolve[%s] %s: %d callers, %d searches (%d cached), %.1fus"
        ev.strategy ev.query ev.hits ev.searches ev.cached ev.elapsed_us)

(* -- JSON rendering (shared helpers: no json dependency) -------------- *)

let event_to_json ev =
  Printf.sprintf
    "{\"strategy\":\"%s\",\"query\":\"%s\",\"hits\":%d,\"searches\":%d,\
     \"cached\":%d,\"elapsed_us\":%s}"
    (Obs.Jsonf.escape ev.strategy) (Obs.Jsonf.escape ev.query) ev.hits
    ev.searches ev.cached
    (Obs.Jsonf.number ev.elapsed_us)

(* -- Ring buffer ----------------------------------------------------- *)

module Ring = struct
  type t = {
    buf : event option array;
    lock : Mutex.t;
    mutable next : int;     (* total events ever recorded *)
  }

  let create ?(capacity = 4096) () =
    { buf = Array.make (max 1 capacity) None; lock = Mutex.create ();
      next = 0 }

  let with_lock t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let sink t ev =
    with_lock t (fun () ->
        t.buf.(t.next mod Array.length t.buf) <- Some ev;
        t.next <- t.next + 1)

  let length t =
    with_lock t (fun () -> min t.next (Array.length t.buf))

  let recorded t = with_lock t (fun () -> t.next)

  (** Buffered events, oldest first (older events beyond the capacity have
      been overwritten). *)
  let events t =
    with_lock t (fun () ->
        let cap = Array.length t.buf in
        let n = min t.next cap in
        let first = if t.next <= cap then 0 else t.next mod cap in
        List.init n (fun i ->
            match t.buf.((first + i) mod cap) with
            | Some ev -> ev
            | None -> assert false))

  let to_json t =
    let evs = events t in
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf "{\"recorded\":%d,\"events\":[" (recorded t));
    List.iteri
      (fun i ev ->
         if i > 0 then Buffer.add_char b ',';
         Buffer.add_string b (event_to_json ev))
      evs;
    Buffer.add_string b "]}";
    Buffer.contents b

  (* [Obs.Io.with_file_out] closes the fd even if rendering or the write
     raises — the bare open_out/close_out pair here used to leak it. *)
  let write_json t path = Obs.Io.write_string path (to_json t)
end

(* -- Aggregation ------------------------------------------------------ *)

type agg = {
  a_count : int;
  a_hits : int;
  a_searches : int;
  a_cached : int;
  a_total_us : float;
  a_max_us : float;
}

(** Per-strategy aggregation of a trace, sorted by strategy name — the
    bench prints these as latency columns. *)
let aggregate evs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun ev ->
       let a =
         Option.value
           (Hashtbl.find_opt tbl ev.strategy)
           ~default:{ a_count = 0; a_hits = 0; a_searches = 0; a_cached = 0;
                      a_total_us = 0.0; a_max_us = 0.0 }
       in
       Hashtbl.replace tbl ev.strategy
         { a_count = a.a_count + 1;
           a_hits = a.a_hits + ev.hits;
           a_searches = a.a_searches + ev.searches;
           a_cached = a.a_cached + ev.cached;
           a_total_us = a.a_total_us +. ev.elapsed_us;
           a_max_us = Float.max a.a_max_us ev.elapsed_us })
    evs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let mean_us a =
  if a.a_count = 0 then 0.0 else a.a_total_us /. float_of_int a.a_count
