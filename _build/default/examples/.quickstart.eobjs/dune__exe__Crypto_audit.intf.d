examples/crypto_audit.mli:
