(** Jimple-flavoured pretty-printing of methods and classes, used by the
    examples and by SSG dumps. *)

let pp_access ppf (a : Jmethod.access) =
  let tags =
    List.filter_map
      (fun (b, s) -> if b then Some s else None)
      [ a.is_public, "public"; a.is_private, "private"; a.is_static, "static";
        a.is_abstract, "abstract"; a.is_final, "final"; a.is_native, "native" ]
  in
  Fmt.string ppf (String.concat " " tags)

let pp_method ppf (m : Jmethod.t) =
  Fmt.pf ppf "  %a %s@." pp_access m.access (Jsig.sub_signature m.msig);
  match m.body with
  | None -> Fmt.pf ppf "    <no body>@."
  | Some body ->
    Array.iteri (fun i st -> Fmt.pf ppf "    %3d: %s@." i (Stmt.to_string st))
      body

let pp_class ppf (c : Jclass.t) =
  let kind = if c.is_interface then "interface" else "class" in
  Fmt.pf ppf "%s %s" kind c.name;
  (match c.super with Some s -> Fmt.pf ppf " extends %s" s | None -> ());
  if c.interfaces <> [] then
    Fmt.pf ppf " implements %s" (String.concat ", " c.interfaces);
  Fmt.pf ppf "@.";
  List.iter (fun f -> Fmt.pf ppf "  field %s@." (Jsig.field_to_string f))
    c.fields;
  List.iter (pp_method ppf) c.methods

let pp_program ppf p =
  let cs =
    Program.fold_classes p (fun c acc -> c :: acc) []
    |> List.filter (fun (c : Jclass.t) -> not c.is_system)
    |> List.sort (fun (a : Jclass.t) b -> String.compare a.name b.name)
  in
  List.iter (fun c -> Fmt.pf ppf "%a@." pp_class c) cs
