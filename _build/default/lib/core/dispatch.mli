(** Search dispatch: given a callee method whose callers must be located,
    decide which of the search mechanisms of Sec. IV applies. *)

type strategy = Basic | Advanced | Clinit | Lifecycle
val to_string : strategy -> string

(** Classify [callee].  Order matters: [<clinit>] before everything (it is a
    static method but unsearchable); lifecycle handlers before the
    super/interface test (they override framework declarations yet need the
    domain-knowledge search, not object taint). *)
val classify : Ir.Program.t -> Ir.Jsig.meth -> strategy
