lib/core/sigformat.ml: Dex Ir
