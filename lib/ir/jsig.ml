(** Method and field signatures, in Soot's textual conventions.

    A full method signature prints as
    [<com.foo.Bar: void start(java.lang.String)>] and a sub-signature (the
    class-independent part used for virtual dispatch) as
    [void start(java.lang.String)]. *)

type meth = {
  cls : string;  (** declaring class, dotted notation *)
  name : string; (** simple method name; [<init>] / [<clinit>] for ctors *)
  params : Types.t list;
  ret : Types.t;
}

type field = {
  fcls : string;
  fname : string;
  fty : Types.t;
}

let meth ~cls ~name ~params ~ret = { cls; name; params; ret }
let field ~cls ~name ~ty = { fcls = cls; fname = name; fty = ty }

let meth_equal a b =
  String.equal a.cls b.cls && String.equal a.name b.name
  && Types.equal a.ret b.ret
  && List.length a.params = List.length b.params
  && List.for_all2 Types.equal a.params b.params

let field_equal a b =
  String.equal a.fcls b.fcls && String.equal a.fname b.fname
  && Types.equal a.fty b.fty

let is_init m = String.equal m.name "<init>"
let is_clinit m = String.equal m.name "<clinit>"

(** Class-independent part of a method signature: [ret name(p1,p2)].  Two
    methods with equal sub-signatures are in an overriding relation when their
    classes are. *)
let sub_signature m =
  Printf.sprintf "%s %s(%s)" (Types.to_string m.ret) m.name
    (String.concat "," (List.map Types.to_string m.params))

(** Full Soot-format signature: [<cls: ret name(p1,p2)>]. *)
let meth_to_string m = Printf.sprintf "<%s: %s>" m.cls (sub_signature m)

let field_to_string f =
  Printf.sprintf "<%s: %s %s>" f.fcls (Types.to_string f.fty) f.fname

(** Parse a Soot-format method signature produced by {!meth_to_string}.
    Raises [Invalid_argument] on malformed input. *)
let meth_of_string s =
  let fail () = invalid_arg (Printf.sprintf "Jsig.meth_of_string: %S" s) in
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '<' || s.[n - 1] <> '>' then fail ();
  let inner = String.sub s 1 (n - 2) in
  match String.index_opt inner ':' with
  | None -> fail ()
  | Some colon ->
    let cls = String.sub inner 0 colon in
    let rest = String.trim (String.sub inner (colon + 1) (String.length inner - colon - 1)) in
    (match String.index_opt rest ' ' with
     | None -> fail ()
     | Some sp ->
       let ret = Types.of_string (String.sub rest 0 sp) in
       let rest = String.sub rest (sp + 1) (String.length rest - sp - 1) in
       (match String.index_opt rest '(' with
        | None -> fail ()
        | Some lp ->
          let name = String.sub rest 0 lp in
          let rp = String.rindex rest ')' in
          let args = String.sub rest (lp + 1) (rp - lp - 1) in
          let params =
            if String.trim args = "" then []
            else
              String.split_on_char ',' args |> List.map Types.of_string
          in
          { cls; name; params; ret }))

let pp_meth ppf m = Fmt.string ppf (meth_to_string m)
let pp_field ppf f = Fmt.string ppf (field_to_string f)

module Meth_key = struct
  type t = meth
  let equal = meth_equal
  let hash m = Hashtbl.hash (m.cls, m.name, List.map Types.to_key m.params)
end

module Meth_tbl = Hashtbl.Make (Meth_key)

(** Interned full signature: [Sym.id (meth_sym m)] is an O(1) dedup key for
    a method, and [Sym.to_string] returns {!meth_to_string}'s output without
    re-rendering it.  Memoized process-wide, domain-safe. *)
let meth_sym =
  Sym.memo ~size:1024 ~hash:Meth_key.hash ~equal:Meth_key.equal meth_to_string

(** Interned sub-signature: the overriding-relation comparisons of the
    forward object taint reduce to integer equality on this symbol. *)
let subsig_sym =
  Sym.memo ~size:1024 ~hash:Meth_key.hash ~equal:Meth_key.equal sub_signature

module Field_key = struct
  type t = field
  let equal = field_equal
  let hash f = Hashtbl.hash (f.fcls, f.fname)
end

module Field_tbl = Hashtbl.Make (Field_key)
