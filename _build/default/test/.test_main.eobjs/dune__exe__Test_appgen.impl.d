test/test_appgen.ml: Alcotest Appgen Dex Framework List Manifest Printf String
