(** Per-sink provenance ledger: the compact derivation record every sink
    report carries — queries issued per category, resolver strategies taken
    with caller counts, budget spent vs cap, cache/replay status, SSG size
    and wall-clock cost.  Rendered by [analyze --explain] and serialized
    into the eval pipeline. *)

type source =
  | Fresh                 (** computed by a backward slice in this run *)
  | Replayed              (** served from the persisted result cache *)
  | Sink_cache            (** Sec. IV-F sink-API reachability shortcut *)

val source_to_string : source -> string

(** Strategy slot names, in [Resolver.strategy_index] order. *)
val strategy_names : string array

type t = {
  p_source : source;
  p_strategies : (string * int * int) list;
      (** (strategy, resolutions, callers found), non-zero only *)
  p_searches : int;
  p_search_cached : int;
      (** scheduling-dependent — informational, not in {!key} *)
  p_categories : (string * int) list;  (** queries per category, non-zero *)
  p_work : int;
  p_max_work : int;
  p_depth_limit : int;
  p_deadline_ms : float option;
  p_ssg_nodes : int;
  p_ssg_edges : int;
  p_wall_us : float;  (** 0. for non-fresh sources; not in {!key} *)
}

(** Ledger of a verdict replayed from the persisted result cache. *)
val replayed : budget:Context.budget -> t

(** Ledger of a verdict served by the sink-API reachability shortcut. *)
val sink_cache_served : budget:Context.budget -> t

(** Ledger of a freshly sliced sink: drains [ctx]'s accumulators and deltas
    the domain-local search counters against the slice-start snapshot. *)
val fresh_of : Context.t -> wall_us:float -> t

(** Multi-line rendering for [analyze --explain]; [timing:false] omits the
    wall-clock line (stable across runs). *)
val render : ?timing:bool -> t -> string

(** Deterministic fingerprint: everything except the search-cache split and
    wall time.  Equal across jobs=1 and jobs=N for the same app/rules. *)
val key : t -> string

(** Compact single-line JSON object. *)
val to_json : t -> string
