(** Shared JSON fragment helpers for the tree's hand-rolled writers (no json
    dependency).  All float rendering clamps non-finite values first —
    [Printf "%f"] prints [inf]/[nan], which is not valid JSON. *)

(** JSON string-escape (quotes, backslashes, control characters). *)
val escape : string -> string

(** [nan -> 0.], [±inf -> ±max_float], finite floats unchanged. *)
val clamp : float -> float

(** Finite-clamped float as a JSON number with [dec] decimals (default 1). *)
val number : ?dec:int -> float -> string

val str_field : string -> string -> string
val int_field : string -> int -> string
val num_field : ?dec:int -> string -> float -> string

(** Minimal line-oriented field readers for the writers above (used by the
    exporters' round-trip parsers): first value of ["key":...] on a line. *)

val field_str : string -> string -> string option
val field_int : string -> string -> int option
val field_float : string -> string -> float option
