(** Methods: signature, access flags and an optional SSA-ish body.

    Parameter and receiver bindings follow Shimple's identity-statement
    convention: the body begins with [l := @this] (instance methods) followed
    by [li := @parameterI] statements. *)

type access = {
  is_static : bool;
  is_private : bool;
  is_public : bool;
  is_abstract : bool;
  is_final : bool;
  is_native : bool;
  is_synthetic : bool;
}

let default_access = {
  is_static = false;
  is_private = false;
  is_public = true;
  is_abstract = false;
  is_final = false;
  is_native = false;
  is_synthetic = false;
}

type t = {
  msig : Jsig.meth;
  access : access;
  body : Stmt.t array option;  (** [None] for abstract / native methods *)
}

let make ?(access = default_access) ~msig ~body () =
  { msig; access; body }

let is_constructor m = Jsig.is_init m.msig
let is_clinit m = Jsig.is_clinit m.msig

(** A "signature method" in the paper's sense (Sec. IV-A): one whose callers
    can be located by the basic signature-based search alone — static methods,
    private methods and constructors.  [<clinit>] is nominally a signature
    method but needs the special recursive search of Sec. IV-C, so it is
    excluded here. *)
let is_signature_method m =
  (not (is_clinit m))
  && (m.access.is_static || m.access.is_private || is_constructor m)

let sub_signature m = Jsig.sub_signature m.msig
let full_signature m = Jsig.meth_to_string m.msig

(** Local bound to [@parameterN], when the body uses the identity-statement
    convention. *)
let param_local m n =
  match m.body with
  | None -> None
  | Some body ->
    Array.fold_left
      (fun acc st ->
         match acc, st with
         | Some _, _ -> acc
         | None, Stmt.Assign (l, Expr.Param i) when i = n -> Some l
         | None, _ -> None)
      None body

(** Local bound to [@this]. *)
let this_local m =
  match m.body with
  | None -> None
  | Some body ->
    Array.fold_left
      (fun acc st ->
         match acc, st with
         | Some _, _ -> acc
         | None, Stmt.Assign (l, Expr.This) -> Some l
         | None, _ -> None)
      None body

(** All call sites in the body: [(stmt index, invoke)] pairs. *)
let call_sites m =
  match m.body with
  | None -> []
  | Some body ->
    let acc = ref [] in
    Array.iteri
      (fun i st ->
         match Stmt.invoke st with
         | Some iv -> acc := (i, iv) :: !acc
         | None -> ())
      body;
    List.rev !acc

let stmt_count m = match m.body with None -> 0 | Some b -> Array.length b
