test/test_eval.ml: Alcotest Appgen Evalharness Filename Float Framework List Sys
