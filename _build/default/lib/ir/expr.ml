(** Expressions on the right-hand side of IR statements.

    The slicing and forward analyses of the paper only distinguish six kinds
    of statement expressions — BinopExpr, CastExpr, InvokeExpr, NewExpr,
    NewArrayExpr and PhiExpr — plus field/array references and the identity
    expressions binding parameters and [this]. *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr | Ushr
  | Cmp
  | Eq | Ne | Lt | Le | Gt | Ge

type invoke_kind = Virtual | Special | Static | Interface

type invoke = {
  kind : invoke_kind;
  callee : Jsig.meth;
  base : Value.local option;  (** receiver; [None] for static invokes *)
  args : Value.t list;
}

type t =
  | Imm of Value.t                          (** copy / constant load *)
  | Binop of binop * Value.t * Value.t
  | Cast of Types.t * Value.t
  | Invoke of invoke
  | New of string                           (** [new-instance] *)
  | New_array of Types.t * Value.t          (** element type, length *)
  | Array_get of Value.local * Value.t      (** [aget]: array, index *)
  | Instance_get of Value.local * Jsig.field  (** [iget] *)
  | Static_get of Jsig.field                (** [sget] *)
  | Phi of Value.local list
  | Param of int                            (** [@parameterN] identity *)
  | This                                    (** [@this] identity *)
  | Caught_exception
  | Length of Value.t                       (** [array-length] *)

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Ushr -> ">>>" | Cmp -> "cmp"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let invoke_kind_to_string = function
  | Virtual -> "virtualinvoke"
  | Special -> "specialinvoke"
  | Static -> "staticinvoke"
  | Interface -> "interfaceinvoke"

(** All values read by an expression (receiver included for invokes). *)
let uses = function
  | Imm v -> [ v ]
  | Binop (_, a, b) -> [ a; b ]
  | Cast (_, v) -> [ v ]
  | Invoke { base; args; _ } ->
    (match base with Some b -> Value.Local b :: args | None -> args)
  | New _ -> []
  | New_array (_, n) -> [ n ]
  | Array_get (a, i) -> [ Value.Local a; i ]
  | Instance_get (o, _) -> [ Value.Local o ]
  | Static_get _ -> []
  | Phi ls -> List.map (fun l -> Value.Local l) ls
  | Param _ | This | Caught_exception -> []
  | Length v -> [ v ]

let invoke_of = function Invoke iv -> Some iv | _ -> None

let to_string e =
  match e with
  | Imm v -> Value.to_string v
  | Binop (op, a, b) ->
    Printf.sprintf "%s %s %s" (Value.to_string a) (binop_to_string op)
      (Value.to_string b)
  | Cast (t, v) -> Printf.sprintf "(%s) %s" (Types.to_string t) (Value.to_string v)
  | Invoke { kind; callee; base; args } ->
    let args_s = String.concat ", " (List.map Value.to_string args) in
    (match base with
     | Some b ->
       Printf.sprintf "%s %s.%s(%s)" (invoke_kind_to_string kind) b.Value.id
         (Jsig.meth_to_string callee) args_s
     | None ->
       Printf.sprintf "%s %s(%s)" (invoke_kind_to_string kind)
         (Jsig.meth_to_string callee) args_s)
  | New c -> "new " ^ c
  | New_array (t, n) ->
    Printf.sprintf "newarray (%s)[%s]" (Types.to_string t) (Value.to_string n)
  | Array_get (a, i) -> Printf.sprintf "%s[%s]" a.Value.id (Value.to_string i)
  | Instance_get (o, f) ->
    Printf.sprintf "%s.%s" o.Value.id (Jsig.field_to_string f)
  | Static_get f -> Jsig.field_to_string f
  | Phi ls -> "Phi(" ^ String.concat ", " (List.map (fun l -> l.Value.id) ls) ^ ")"
  | Param i -> Printf.sprintf "@parameter%d" i
  | This -> "@this"
  | Caught_exception -> "@caughtexception"
  | Length v -> "lengthof " ^ Value.to_string v

let pp ppf e = Fmt.string ppf (to_string e)
