(** Special search over Android ICC (Sec. IV-D): the two-time search.

    To find who starts a given component, BackDroid launches two searches —
    one for ICC API calls (startService / startActivity / sendBroadcast) and
    one for the ICC parameter (the [const-class] of the target component for
    explicit ICC, or the action string for implicit ICC) — and keeps the ICC
    calls whose enclosing method also contains a parameter hit. *)

open Ir

type icc_site = {
  caller : Jsig.meth;
  site : int;             (** index of the ICC call statement *)
  intent_local : string;  (** the Intent argument at the ICC call *)
}

let icc_call_subsigs =
  [ "startService"; "startActivity"; "sendBroadcast" ]

(** Classes an ICC call may be declared against in the bytecode. *)
let icc_receiver_classes =
  [ "android.content.Context"; "android.app.Activity"; "android.app.Service" ]

let icc_call_queries () =
  List.concat_map
    (fun name ->
       List.map
         (fun cls ->
            let msig =
              Jsig.meth ~cls ~name ~params:[ Types.intent ] ~ret:Types.Void
            in
            Bytesearch.Query.invocation_sym (Sigformat.to_dex_meth_sym msig))
         icc_receiver_classes)
    icc_call_subsigs

(** First search: all ICC call sites in the app. *)
let search_icc_calls engine =
  List.concat_map
    (fun q -> Bytesearch.Engine.run engine q)
    (icc_call_queries ())

(** Second search: parameter hits for the target component. *)
let search_icc_params engine ~(component : Manifest.Component.t) =
  let explicit =
    Bytesearch.Engine.run engine
      (Bytesearch.Query.const_class_sym
         (Sigformat.to_dex_class_sym component.cls))
  in
  let implicit =
    List.concat_map
      (fun action ->
         Bytesearch.Engine.run engine (Bytesearch.Query.const_string action))
      component.actions
  in
  explicit @ implicit

(** Merge the two search results: an ICC call counts if its enclosing method
    also contains a parameter hit.  Returns the matching call sites with the
    Intent local recovered from the IR. *)
let callers engine ~(component : Manifest.Component.t) =
  let program = Bytesearch.Engine.program engine in
  let call_hits = search_icc_calls engine in
  let param_hits = search_icc_params engine ~component in
  let param_methods = Hashtbl.create 8 in
  List.iter
    (fun (h : Bytesearch.Engine.hit) ->
       Hashtbl.replace param_methods (Sym.id (Jsig.meth_sym h.owner)) ())
    param_hits;
  let merged =
    List.filter
      (fun (h : Bytesearch.Engine.hit) ->
         Hashtbl.mem param_methods (Sym.id (Jsig.meth_sym h.owner)))
      call_hits
  in
  Log.debug (fun m ->
      m "two-time ICC search for %s: %d call hits, %d param hits, %d merged"
        component.cls (List.length call_hits) (List.length param_hits)
        (List.length merged));
  List.filter_map
    (fun (h : Bytesearch.Engine.hit) ->
       match Program.find_method program h.owner, h.stmt_idx with
       | Some { Jmethod.body = Some body; _ }, Some idx
         when idx < Array.length body ->
         (match Stmt.invoke body.(idx) with
          | Some iv ->
            (match iv.Expr.args with
             | [ Value.Local intent ] ->
               Some { caller = h.owner; site = idx; intent_local = intent.Value.id }
             | _ -> None)
          | None -> None)
       | _, _ -> None)
    merged
  |> List.sort_uniq compare
