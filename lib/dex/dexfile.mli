(** A disassembled (and, if multidex, merged) dex file: the flat array of
    plaintext lines that the bytecode search engine scans, each line tagged
    with its enclosing method, plus the compact hit {!Arena} the engine's
    per-category postings index into. *)

type t = {
  lines : Disasm.line array;
  arena : Arena.t;
  program : Ir.Program.t;
}

val of_program : Ir.Program.t -> t

(** A dexfile with no plaintext lines and an empty arena.  Warm starts use
    it as the generation-time placeholder when the real lines and arena are
    about to be mapped from a snapshot instead of disassembled. *)
val empty : Ir.Program.t -> t

(** Emulate multidex: disassemble each classesN.dex partition separately and
    merge the plaintexts, as BackDroid's preprocessing step does. *)
val of_partitions : Ir.Program.t -> string list list -> t
val line_count : t -> int
val to_string : t -> string
