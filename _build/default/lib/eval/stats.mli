(** Small statistics helpers for the experiment harness. *)

val mean : float list -> float
val sorted : 'a list -> 'a list

(** Median (lower median for even-length lists, as the paper reports). *)
val median : float list -> float
val percentile : float -> float list -> float
val minimum : float list -> float
val maximum : float list -> float

(** Count of elements within [lo, hi). *)
val count_in : lo:'a -> hi:'a -> 'a list -> int

(** Histogram over bucket boundaries: [buckets = [b1; b2; ...]] yields counts
    for [< b1), [b1, b2), ..., [bn, inf). *)
val histogram : buckets:float list -> float list -> int list
val fraction : int -> int -> float
