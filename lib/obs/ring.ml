(** Lock-free per-domain ring buffers: the storage layer of the flight
    recorder ({!Flight}).

    Unlike {!Span.Recorder}, which *drops* once a shard is full (a profile
    wants the beginning of the run), a ring *wraps* — it always retains the
    most recent [capacity] items per domain, which is what a post-mortem
    wants.  The hot path is one [Domain.DLS] lookup plus an array store:
    each domain owns its shard exclusively, so no mutex and no atomic RMW
    is ever taken while recording.  Shards register themselves under a lock
    once per domain; {!snapshot} merges them after the workload quiesces
    (pool batches settle through the pool's own mutex, which publishes the
    shard writes). *)

type 'a shard = {
  mutable buf : 'a array;   (* grows to [capacity], then wraps *)
  mutable len : int;        (* filled slots, <= capacity *)
  mutable pos : int;        (* next write index once wrapping *)
  mutable pushed : int;     (* total pushes on this shard, ever *)
}

type 'a t = {
  capacity : int;                 (* per shard *)
  lock : Mutex.t;                 (* guards [shards]/[free] *)
  shards : 'a shard list ref;     (* every shard ever issued, for merging *)
  free : 'a shard list ref;       (* shards of exited domains, for reuse *)
  key : 'a shard Domain.DLS.key;
}

let create ?(capacity = 1 lsl 12) () =
  let lock = Mutex.create () in
  let shards = ref [] in
  let free = ref [] in
  let key =
    (* runs on first use per domain — the only locked step of the hot path,
       paid once per domain.  A domain returns its shard to the free list
       on exit and the next domain reuses it: short-lived per-call pools
       (Driver.analyze spawns one per run) would otherwise grow the
       registry — and the retained-event heap — without bound.  A retired
       shard keeps its contents, so events of dead domains stay visible to
       {!snapshot} until a successor wraps over them. *)
    Domain.DLS.new_key (fun () ->
        Mutex.lock lock;
        let s =
          match !free with
          | s :: rest ->
            free := rest;
            s
          | [] ->
            let s = { buf = [||]; len = 0; pos = 0; pushed = 0 } in
            shards := s :: !shards;
            s
        in
        Mutex.unlock lock;
        Domain.at_exit (fun () ->
            Mutex.lock lock;
            free := s :: !free;
            Mutex.unlock lock);
        s)
  in
  { capacity = max 16 capacity; lock; shards; free; key }

let capacity t = t.capacity

(* Unsynchronized per-domain append-or-overwrite. *)
let push t v =
  let s = Domain.DLS.get t.key in
  if s.len < t.capacity then begin
    (* growth phase: plain append, doubling up to capacity *)
    let cap = Array.length s.buf in
    if s.len >= cap then begin
      let cap' = min t.capacity (max 16 (2 * cap)) in
      let buf' = Array.make cap' v in
      Array.blit s.buf 0 buf' 0 s.len;
      s.buf <- buf'
    end;
    s.buf.(s.len) <- v;
    s.len <- s.len + 1;
    if s.len = t.capacity then s.pos <- 0
  end
  else begin
    (* wrap phase: overwrite the oldest slot *)
    s.buf.(s.pos) <- v;
    s.pos <- (s.pos + 1) mod t.capacity
  end;
  s.pushed <- s.pushed + 1

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let shard_items s cap =
  if s.len < cap then Array.to_list (Array.sub s.buf 0 s.len)
  else
    (* oldest-first: the slot about to be overwritten is the oldest *)
    Array.to_list (Array.sub s.buf s.pos (cap - s.pos))
    @ Array.to_list (Array.sub s.buf 0 s.pos)

(** Retained items, oldest-first within each shard, shards concatenated in
    registration order (callers carrying timestamps sort afterwards). *)
let snapshot t =
  with_lock t (fun () ->
      List.concat_map (fun s -> shard_items s t.capacity) !(t.shards))

(** Items currently retained across all shards. *)
let length t =
  with_lock t (fun () -> List.fold_left (fun n s -> n + s.len) 0 !(t.shards))

(** Items ever pushed across all shards (retained + overwritten). *)
let total t =
  with_lock t (fun () ->
      List.fold_left (fun n s -> n + s.pushed) 0 !(t.shards))

(** Items overwritten by wrap-around (= [total - length]). *)
let overwritten t =
  with_lock t (fun () ->
      List.fold_left (fun n s -> n + (s.pushed - s.len)) 0 !(t.shards))

let clear t =
  with_lock t (fun () ->
      List.iter
        (fun s ->
           s.len <- 0;
           s.pos <- 0;
           s.pushed <- 0)
        !(t.shards))
