(** Client side of the daemon protocol: one blocking connection,
    requests answered in order. *)

type t

val connect :
  ?tcp:string * int -> socket:string -> unit -> (t, string) result

(** {!connect}, retrying every [delay_s] (default 50 ms) up to [attempts]
    (default 100) — waits out a daemon that is still binding its
    socket. *)
val connect_retry :
  ?attempts:int -> ?delay_s:float -> ?tcp:string * int -> socket:string ->
  unit -> (t, string) result

val close : t -> unit

(** Send one request and wait for its response. *)
val call : t -> Protocol.request -> (Protocol.response, string) result

(** Run [f] over a fresh connection, closing it afterwards. *)
val with_conn :
  ?tcp:string * int -> socket:string ->
  (t -> ('a, string) result) -> ('a, string) result
