(** Class-hierarchy-analysis call resolution for the whole-app baselines. *)

(** Concrete app methods an invocation may dispatch to under CHA. *)
val targets : Ir.Program.t -> Ir.Expr.invoke -> Ir.Jsig.meth list
