lib/baseline/amandroid.ml: Array Backdroid Callgraph Cha Expr Framework Hashtbl Int64 Ir Jclass Jmethod Jsig Liblist List Manifest Option Program Stmt String Types Unix Value
