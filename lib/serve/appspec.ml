(* The wire-level description of a synthetic app.  The daemon and the
   one-shot CLI build their apps from the same spec through the same
   [generate], so a served report and a one-shot report describe the
   identical program by construction. *)

module G = Appgen.Generator
module Shape = Appgen.Shape
module Sinks = Framework.Sinks

type t = {
  seed : int;
  size_mb : float;
  plants : (string * string) list;
  insecure : bool;
  mutate_pct : float;
}

let default =
  { seed = 1; size_mb = 10.0; plants = []; insecure = false; mutate_pct = 0.0 }

let sink_names =
  [ "cipher", Sinks.cipher; "ssl", Sinks.ssl_factory; "https", Sinks.https_conn;
    "sms", Sinks.sms; "server-socket", Sinks.server_socket;
    "local-socket", Sinks.local_socket; "webview-js", Sinks.webview_js;
    "webview-bridge", Sinks.webview_bridge; "sql", Sinks.sql_query;
    "intent-redirect", Sinks.intent_redirect ]

let app_name t = Printf.sprintf "com.cli.app%d" t.seed

let fingerprint t =
  Printf.sprintf "s%d:z%.4f:i%b:u%.6f:p[%s]" t.seed t.size_mb t.insecure
    t.mutate_pct
    (String.concat ";"
       (List.map (fun (sh, sk) -> sh ^ ":" ^ sk) t.plants))

let to_string t =
  Printf.sprintf "seed=%d size-mb=%g insecure=%b mutate-pct=%g plants=%s"
    t.seed t.size_mb t.insecure t.mutate_pct
    (if t.plants = [] then "(default)"
     else
       String.concat ","
         (List.map (fun (sh, sk) -> sh ^ ":" ^ sk) t.plants))

let resolve_shape name =
  match List.find_opt (fun sh -> Shape.to_string sh = name) Shape.all with
  | Some sh -> Ok sh
  | None ->
    Error
      (Printf.sprintf "unknown shape %S (one of: %s)" name
         (String.concat ", " (List.map Shape.to_string Shape.all)))

let resolve_sink name =
  match List.assoc_opt name sink_names with
  | Some sink -> Ok sink
  | None ->
    Error
      (Printf.sprintf "unknown sink %S (one of: %s)" name
         (String.concat ", " (List.map fst sink_names)))

let resolve t =
  let rec plants acc = function
    | [] -> Ok (List.rev acc)
    | (sh, sk) :: rest ->
      (match resolve_shape sh with
       | Error e -> Error e
       | Ok shape ->
         (match resolve_sink sk with
          | Error e -> Error e
          | Ok sink -> plants ({ G.shape; sink; insecure = t.insecure } :: acc)
              rest))
  in
  let specs =
    if t.plants = [] then [ (Shape.to_string Shape.Direct, "cipher") ]
    else t.plants
  in
  match plants [] specs with
  | Error e -> Error e
  | Ok plants ->
    Ok
      { G.default_config with
        G.seed = t.seed;
        name = app_name t;
        filler_classes =
          Appgen.Corpus.filler_classes_for_mb ~mb:t.size_mb
            ~methods_per_class:6 ~stmts_per_method:8;
        plants }

let generate ?(build_dex = true) t =
  match resolve t with
  | Error e -> Error e
  | Ok cfg ->
    let app = G.generate ~build_dex cfg in
    if t.mutate_pct > 0.0 then
      Ok (G.mutate ~build_dex ~pct:t.mutate_pct app)
    else Ok app
