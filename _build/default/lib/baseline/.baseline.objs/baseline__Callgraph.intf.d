lib/baseline/callgraph.mli: Framework Hashtbl Ir Manifest
