(** Framework stub classes — the [is_system] part of the class table.  Their
    methods carry no bodies (like real framework classes outside the app dex),
    but their signatures and hierarchy are what both the searches and CHA
    resolution need. *)

open Ir

let decl ~cls ~name ~params ~ret =
  Builder.abstract_method ~cls ~name ~params ~ret

let native_method ?(static = false) ~cls ~name ~params ~ret () =
  let access =
    { Jmethod.default_access with Jmethod.is_native = true; is_static = static }
  in
  Jmethod.make ~access ~msig:(Jsig.meth ~cls ~name ~params ~ret) ~body:None ()

let system_class ?super ?(interfaces = []) ?(is_interface = false)
    ?(is_abstract = false) ?(fields = []) ?(methods = []) name =
  let super =
    match super with
    | Some s -> Some s
    | None -> if name = "java.lang.Object" then None else Some "java.lang.Object"
  in
  { (Jclass.make ~interfaces ~is_interface ~is_abstract ~is_system:true
       ~fields ~methods name)
    with Jclass.super }

let nm = native_method

let classes () =
  let open Types in
  [
    system_class "java.lang.Object"
      ~methods:[ nm ~cls:"java.lang.Object" ~name:"<init>" ~params:[] ~ret:Void () ];
    system_class "java.lang.String";
    system_class "java.lang.Class"
      ~methods:
        [ nm ~static:true ~cls:"java.lang.Class" ~name:"forName"
            ~params:[ string_ ] ~ret:(Object "java.lang.Class") ();
          nm ~cls:"java.lang.Class" ~name:"getMethod" ~params:[ string_ ]
            ~ret:(Object "java.lang.reflect.Method") () ];
    system_class "java.lang.reflect.Method"
      ~methods:
        [ nm ~cls:"java.lang.reflect.Method" ~name:"invoke"
            ~params:[ object_; Array object_ ] ~ret:object_ () ];
    system_class "java.lang.StringBuilder"
      ~methods:
        [ nm ~cls:"java.lang.StringBuilder" ~name:"<init>" ~params:[] ~ret:Void ();
          nm ~cls:"java.lang.StringBuilder" ~name:"append" ~params:[ string_ ]
            ~ret:(Object "java.lang.StringBuilder") ();
          nm ~cls:"java.lang.StringBuilder" ~name:"toString" ~params:[]
            ~ret:string_ () ];
    system_class "java.lang.Runnable" ~is_interface:true
      ~methods:[ decl ~cls:"java.lang.Runnable" ~name:"run" ~params:[] ~ret:Void ];
    system_class "java.lang.Thread" ~interfaces:[ "java.lang.Runnable" ]
      ~methods:
        [ nm ~cls:"java.lang.Thread" ~name:"<init>" ~params:[] ~ret:Void ();
          nm ~cls:"java.lang.Thread" ~name:"<init>" ~params:[ runnable ] ~ret:Void ();
          nm ~cls:"java.lang.Thread" ~name:"start" ~params:[] ~ret:Void ();
          nm ~cls:"java.lang.Thread" ~name:"run" ~params:[] ~ret:Void () ];
    system_class "java.util.concurrent.Executor" ~is_interface:true
      ~methods:
        [ decl ~cls:"java.util.concurrent.Executor" ~name:"execute"
            ~params:[ runnable ] ~ret:Void ];
    system_class "java.util.concurrent.Executors"
      ~methods:
        [ nm ~static:true ~cls:"java.util.concurrent.Executors"
            ~name:"newSingleThreadExecutor" ~params:[]
            ~ret:(Object "java.util.concurrent.Executor") () ];
    system_class "android.os.Bundle";
    system_class "android.os.IBinder" ~is_interface:true;
    system_class "android.os.AsyncTask" ~is_abstract:true
      ~methods:
        [ nm ~cls:"android.os.AsyncTask" ~name:"<init>" ~params:[] ~ret:Void ();
          nm ~cls:"android.os.AsyncTask" ~name:"execute"
            ~params:[ Array object_ ] ~ret:(Object "android.os.AsyncTask") ();
          decl ~cls:"android.os.AsyncTask" ~name:"doInBackground"
            ~params:[ Array object_ ] ~ret:object_ ];
    system_class "android.content.Context"
      ~methods:
        [ nm ~cls:"android.content.Context" ~name:"startService"
            ~params:[ intent ] ~ret:Void ();
          nm ~cls:"android.content.Context" ~name:"startActivity"
            ~params:[ intent ] ~ret:Void ();
          nm ~cls:"android.content.Context" ~name:"sendBroadcast"
            ~params:[ intent ] ~ret:Void () ];
    system_class "android.content.Intent"
      ~methods:
        [ nm ~cls:"android.content.Intent" ~name:"<init>" ~params:[] ~ret:Void ();
          nm ~cls:"android.content.Intent" ~name:"<init>"
            ~params:[ Object "android.content.Context"; Object "java.lang.Class" ]
            ~ret:Void ();
          nm ~cls:"android.content.Intent" ~name:"setAction" ~params:[ string_ ]
            ~ret:intent ();
          nm ~cls:"android.content.Intent" ~name:"putExtra"
            ~params:[ string_; string_ ] ~ret:intent ();
          nm ~cls:"android.content.Intent" ~name:"getStringExtra"
            ~params:[ string_ ] ~ret:string_ ();
          nm ~cls:"android.content.Intent" ~name:"getAction" ~params:[]
            ~ret:string_ () ];
    system_class "android.app.Activity" ~super:"android.content.Context"
      ~methods:
        [ nm ~cls:"android.app.Activity" ~name:"onCreate"
            ~params:[ Object "android.os.Bundle" ] ~ret:Void ();
          nm ~cls:"android.app.Activity" ~name:"onStart" ~params:[] ~ret:Void ();
          nm ~cls:"android.app.Activity" ~name:"onResume" ~params:[] ~ret:Void ();
          nm ~cls:"android.app.Activity" ~name:"onPause" ~params:[] ~ret:Void ();
          nm ~cls:"android.app.Activity" ~name:"onStop" ~params:[] ~ret:Void ();
          nm ~cls:"android.app.Activity" ~name:"onDestroy" ~params:[] ~ret:Void ();
          nm ~cls:"android.app.Activity" ~name:"getIntent" ~params:[]
            ~ret:intent () ];
    system_class "android.app.Service" ~super:"android.content.Context"
      ~methods:
        [ nm ~cls:"android.app.Service" ~name:"onCreate" ~params:[] ~ret:Void ();
          nm ~cls:"android.app.Service" ~name:"onStartCommand"
            ~params:[ intent; Int; Int ] ~ret:Int ();
          nm ~cls:"android.app.Service" ~name:"onBind" ~params:[ intent ]
            ~ret:(Object "android.os.IBinder") () ];
    system_class "android.content.BroadcastReceiver"
      ~methods:
        [ nm ~cls:"android.content.BroadcastReceiver" ~name:"onReceive"
            ~params:[ Object "android.content.Context"; intent ] ~ret:Void () ];
    system_class "android.content.ContentProvider"
      ~methods:
        [ nm ~cls:"android.content.ContentProvider" ~name:"onCreate" ~params:[]
            ~ret:Boolean () ];
    system_class "android.view.View"
      ~methods:
        [ nm ~cls:"android.view.View" ~name:"<init>" ~params:[] ~ret:Void ();
          nm ~cls:"android.view.View" ~name:"setOnClickListener"
            ~params:[ Object "android.view.View$OnClickListener" ] ~ret:Void () ];
    system_class "android.view.View$OnClickListener" ~is_interface:true
      ~methods:
        [ decl ~cls:"android.view.View$OnClickListener" ~name:"onClick"
            ~params:[ Object "android.view.View" ] ~ret:Void ];
    system_class "javax.crypto.Cipher"
      ~methods:
        [ nm ~static:true ~cls:"javax.crypto.Cipher" ~name:"getInstance"
            ~params:[ string_ ] ~ret:(Object "javax.crypto.Cipher") () ];
    system_class "org.apache.http.conn.ssl.X509HostnameVerifier"
      ~is_interface:true;
    system_class "org.apache.http.conn.ssl.AllowAllHostnameVerifier"
      ~interfaces:[ "org.apache.http.conn.ssl.X509HostnameVerifier" ]
      ~methods:
        [ nm ~cls:"org.apache.http.conn.ssl.AllowAllHostnameVerifier"
            ~name:"<init>" ~params:[] ~ret:Void () ];
    system_class "org.apache.http.conn.ssl.StrictHostnameVerifier"
      ~interfaces:[ "org.apache.http.conn.ssl.X509HostnameVerifier" ]
      ~methods:
        [ nm ~cls:"org.apache.http.conn.ssl.StrictHostnameVerifier"
            ~name:"<init>" ~params:[] ~ret:Void () ];
    system_class "org.apache.http.conn.ssl.SSLSocketFactory"
      ~fields:[ Api.allow_all_hostname_verifier ]
      ~methods:
        [ nm ~cls:"org.apache.http.conn.ssl.SSLSocketFactory" ~name:"<init>"
            ~params:[] ~ret:Void ();
          nm ~static:true ~cls:"org.apache.http.conn.ssl.SSLSocketFactory"
            ~name:"getSocketFactory" ~params:[]
            ~ret:(Object "org.apache.http.conn.ssl.SSLSocketFactory") ();
          nm ~cls:"org.apache.http.conn.ssl.SSLSocketFactory"
            ~name:"setHostnameVerifier"
            ~params:[ Object "org.apache.http.conn.ssl.X509HostnameVerifier" ]
            ~ret:Void () ];
    system_class "javax.net.ssl.HostnameVerifier" ~is_interface:true;
    system_class "javax.net.ssl.HttpsURLConnection"
      ~methods:
        [ nm ~cls:"javax.net.ssl.HttpsURLConnection" ~name:"<init>" ~params:[]
            ~ret:Void ();
          nm ~cls:"javax.net.ssl.HttpsURLConnection" ~name:"setHostnameVerifier"
            ~params:[ Object "javax.net.ssl.HostnameVerifier" ] ~ret:Void () ];
    system_class "android.app.PendingIntent";
    system_class "android.telephony.SmsManager"
      ~methods:
        [ nm ~static:true ~cls:"android.telephony.SmsManager" ~name:"getDefault"
            ~params:[] ~ret:(Object "android.telephony.SmsManager") ();
          nm ~cls:"android.telephony.SmsManager" ~name:"sendTextMessage"
            ~params:
              [ string_; string_; string_; Object "android.app.PendingIntent";
                Object "android.app.PendingIntent" ]
            ~ret:Void () ];
    system_class "java.net.ServerSocket"
      ~methods:
        [ nm ~cls:"java.net.ServerSocket" ~name:"<init>" ~params:[ Int ]
            ~ret:Void () ];
    system_class "android.net.LocalServerSocket"
      ~methods:
        [ nm ~cls:"android.net.LocalServerSocket" ~name:"<init>"
            ~params:[ string_ ] ~ret:Void () ];
    system_class "android.webkit.WebView"
      ~methods:
        [ nm ~cls:"android.webkit.WebView" ~name:"<init>" ~params:[] ~ret:Void ();
          nm ~cls:"android.webkit.WebView" ~name:"setJavaScriptEnabled"
            ~params:[ Boolean ] ~ret:Void ();
          nm ~cls:"android.webkit.WebView" ~name:"addJavascriptInterface"
            ~params:[ object_; string_ ] ~ret:Void () ];
    system_class "android.database.Cursor" ~is_interface:true;
    system_class "android.database.sqlite.SQLiteDatabase"
      ~methods:
        [ nm ~cls:"android.database.sqlite.SQLiteDatabase" ~name:"<init>"
            ~params:[] ~ret:Void ();
          nm ~cls:"android.database.sqlite.SQLiteDatabase" ~name:"rawQuery"
            ~params:[ string_; Array string_ ]
            ~ret:(Object "android.database.Cursor") () ];
  ]
