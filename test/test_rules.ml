(* The declarative rule engine: file-syntax round-trips, typed parse
   diagnostics, per-sink-group backtracking sharing, multi-rule ==
   N single-rule equivalence (sequential and parallel), the three newer rule
   families end to end, and rule-set stamping of engines and snapshots. *)

module G = Appgen.Generator
module Shape = Appgen.Shape
module Sinks = Framework.Sinks
module Rule = Rules.Rule
module Builtin = Rules.Builtin
module Parse = Rules.Parse
module Driver = Backdroid.Driver
module Detectors = Backdroid.Detectors

let analyze ?(cfg = Driver.default_config) (app : G.app) =
  Driver.analyze ~cfg ~dex:app.dex ~manifest:app.manifest ()

let with_rules ?(jobs = 1) rules =
  { Driver.default_config with Driver.rules; jobs }

let make_app ?(seed = 42) ?(filler = 3) plants =
  G.generate
    { G.default_config with
      G.seed;
      name = Printf.sprintf "com.test.rules%d" seed;
      filler_classes = filler;
      plants = List.map (fun (shape, sink, insecure) -> { G.shape; sink; insecure }) plants }

(* A report, projected to comparable data (SSGs are shared physical values
   and carry no extra information for equality). *)
let key (rep : Driver.sink_report) =
  ( rep.rule.Rule.name,
    rep.sink.Sinks.name,
    Ir.Jsig.meth_to_string rep.meth,
    rep.site,
    rep.reachable,
    Backdroid.Facts.to_string rep.fact,
    Detectors.verdict_to_string rep.verdict )

let keys (r : Driver.result) = List.map key r.reports

(* ------------------------------------------------------------------ *)
(* Syntax round-trip and hashing *)

let test_roundtrip () =
  let src = Rule.list_to_source Builtin.extended in
  match Parse.rules_of_string src with
  | Error e -> Alcotest.fail (Parse.error_to_string e)
  | Ok rules ->
    Alcotest.(check int) "same rule count"
      (List.length Builtin.extended) (List.length rules);
    Alcotest.(check string) "re-render is identical"
      src (Rule.list_to_source rules);
    Alcotest.(check int) "content hash is identical"
      (Rule.hash_list Builtin.extended) (Rule.hash_list rules)

let test_hash_sensitivity () =
  let h = Rule.hash_list Builtin.primary in
  Alcotest.(check bool) "different sets hash differently" true
    (h <> Rule.hash_list Builtin.extended);
  let tweaked =
    match Builtin.primary with
    | r :: rest -> { r with Rule.insecure_when = Rule.True } :: rest
    | [] -> assert false
  in
  Alcotest.(check bool) "predicate change changes the hash" true
    (h <> Rule.hash_list tweaked)

(* ------------------------------------------------------------------ *)
(* Typed parse diagnostics *)

let parse_error src =
  match Parse.rules_of_string src with
  | Ok _ -> Alcotest.fail "malformed rule file parsed successfully"
  | Error e -> e

let test_error_syntax () =
  match parse_error "(rule (name x)" with
  | Parse.Syntax e ->
    Alcotest.(check bool) "position recorded" true (e.Rules.Sexp.pos.line >= 1)
  | Parse.Invalid _ -> Alcotest.fail "expected a Syntax error"

let sink_src =
  "(sink (class a.B) (method m) (params java.lang.String) (return void) \
   (arg 0))"

let test_error_missing_name () =
  match parse_error (Printf.sprintf "(rule %s)" sink_src) with
  | Parse.Invalid { field = "name"; rule = None; _ } -> ()
  | e -> Alcotest.fail (Parse.error_to_string e)

let test_error_missing_sink () =
  match parse_error "(rule (name x) (insecure-when true))" with
  | Parse.Invalid { field = "sink"; rule = Some "x"; _ } -> ()
  | e -> Alcotest.fail (Parse.error_to_string e)

let test_error_arg_range () =
  let src =
    "(rule (name x) (sink (class a.B) (method m) (params java.lang.String) \
     (return void) (arg 3)))"
  in
  match parse_error src with
  | Parse.Invalid { field = "arg"; rule = Some "x"; _ } -> ()
  | e -> Alcotest.fail (Parse.error_to_string e)

let test_error_unknown_pred () =
  let src =
    Printf.sprintf "(rule (name x) %s (insecure-when (frobnicate 1)))" sink_src
  in
  match parse_error src with
  | Parse.Invalid { field = "predicate"; rule = Some "x"; msg; _ } ->
    Alcotest.(check bool) "message names the predicate" true
      (String.length msg > 0)
  | e -> Alcotest.fail (Parse.error_to_string e)

let test_error_unknown_shape () =
  let src =
    Printf.sprintf "(rule (name x) %s (insecure-when (fact-is blob)))" sink_src
  in
  match parse_error src with
  | Parse.Invalid { field = "fact-is"; rule = Some "x"; _ } -> ()
  | e -> Alcotest.fail (Parse.error_to_string e)

let test_error_duplicate_rule () =
  let one = Printf.sprintf "(rule (name x) %s)" sink_src in
  match parse_error (one ^ "\n" ^ one) with
  | Parse.Invalid { field = "name"; rule = Some "x"; msg; _ } ->
    Alcotest.(check string) "diagnostic" "duplicate rule name" msg
  | e -> Alcotest.fail (Parse.error_to_string e)

let test_error_duplicate_field () =
  let src =
    Printf.sprintf "(rule (name x) %s (insecure-when true) (insecure-when false))"
      sink_src
  in
  match parse_error src with
  | Parse.Invalid { field = "insecure-when"; rule = Some "x"; msg; _ } ->
    Alcotest.(check string) "diagnostic" "duplicate field" msg
  | e -> Alcotest.fail (Parse.error_to_string e)

let test_error_to_string_positioned () =
  let s = Parse.error_to_string (parse_error "(rule (name x) (sink))") in
  Alcotest.(check bool) "mentions a line number" true
    (String.length s > 0
     &&
     let has_sub sub =
       let ls = String.length s and lb = String.length sub in
       let rec at i = i + lb <= ls && (String.sub s i lb = sub || at (i + 1)) in
       at 0
     in
     has_sub "line" && has_sub "'x'")

(* ------------------------------------------------------------------ *)
(* Shared per-sink-group backtracking *)

let slice_count () =
  Option.value ~default:0
    (List.assoc_opt "slice.sinks" (Obs.Metrics.snapshot ()).Obs.Metrics.counters)

let test_shared_group_slices_once () =
  (* five rules over the same cipher sink spec: one distinct call site means
     ONE backtracking pass however many rules fan out from it *)
  let app = make_app [ (Shape.Direct, Sinks.cipher, true) ] in
  let audit i =
    { Rule.name = Printf.sprintf "cipher-audit-%d" i;
      description = "audit variant";
      sinks = [ Sinks.cipher ];
      insecure_when = Rule.False;
      secure_when = Rule.True }
  in
  let c0 = slice_count () in
  ignore (analyze ~cfg:(with_rules [ Builtin.ecb_crypto ]) app);
  let single = slice_count () - c0 in
  let five = Builtin.ecb_crypto :: List.init 4 audit in
  let c1 = slice_count () in
  let r = analyze ~cfg:(with_rules five) app in
  let multi = slice_count () - c1 in
  Alcotest.(check int) "one distinct sink call site" 1
    r.Driver.stats.Driver.sink_calls;
  Alcotest.(check int) "five verdicts fan out" 5 (List.length r.Driver.reports);
  Alcotest.(check int) "backtracking passes do not scale with rules"
    single multi

(* ------------------------------------------------------------------ *)
(* Multi-rule run == N single-rule runs, sequentially and in parallel *)

let property_app () =
  make_app ~seed:43 ~filler:4
    [ (Shape.Direct, Sinks.cipher, true);
      (Shape.Callback, Sinks.ssl_factory, true);
      (Shape.Direct, Sinks.sms, true);
      (Shape.Webview_misuse, Sinks.webview_js, true);
      (Shape.Sql_injection, Sinks.sql_query, true);
      (Shape.Intent_redirect, Sinks.intent_redirect, true) ]

let test_multi_equals_singles jobs () =
  let app = property_app () in
  (* extended plus one extra rule sharing the cipher sink, so the fan-out
     path (not just one-rule groups) is part of the property *)
  let extra =
    { Rule.name = "cipher-extra";
      description = "shares the crypto sink spec with ecb-crypto";
      sinks = [ Sinks.cipher ];
      insecure_when = Rule.False;
      secure_when = Rule.Fact_is Rule.Const_str }
  in
  let rules = Builtin.extended @ [ extra ] in
  let multi = keys (analyze ~cfg:(with_rules ~jobs rules) app) in
  let singles =
    List.concat_map
      (fun r -> keys (analyze ~cfg:(with_rules ~jobs [ r ]) app))
      rules
  in
  let sort = List.sort compare in
  Alcotest.(check int)
    (Printf.sprintf "same report count at --jobs %d" jobs)
    (List.length singles) (List.length multi);
  Alcotest.(check bool)
    (Printf.sprintf "multi-rule == N single-rule runs at --jobs %d" jobs)
    true
    (sort multi = sort singles)

let test_jobs_equivalence () =
  let app = property_app () in
  let r1 = keys (analyze ~cfg:(with_rules ~jobs:1 Builtin.extended) app) in
  let r4 = keys (analyze ~cfg:(with_rules ~jobs:4 Builtin.extended) app) in
  Alcotest.(check bool) "identical reports at --jobs 1 and --jobs 4" true
    (r1 = r4)

(* ------------------------------------------------------------------ *)
(* The three newer families, end to end: fire on the trigger scenario,
   stay silent on the safe variant *)

let insecure_families (r : Driver.result) =
  List.sort_uniq compare
    (List.map
       (fun (rep : Driver.sink_report) -> rep.rule.Rule.name)
       (Driver.insecure_reports r))

let check_family shape sink families () =
  let cfg = with_rules Builtin.extended in
  let fired =
    insecure_families (analyze ~cfg (make_app [ (shape, sink, true) ]))
  in
  List.iter
    (fun f ->
       Alcotest.(check bool) (f ^ " fires on the trigger scenario") true
         (List.mem f fired))
    families;
  let safe =
    insecure_families (analyze ~cfg (make_app [ (shape, sink, false) ]))
  in
  Alcotest.(check (list string)) "silent on the safe variant" [] safe

(* ------------------------------------------------------------------ *)
(* Rule-set stamping: engines and snapshots *)

let test_engine_stamp () =
  let app = make_app [ (Shape.Direct, Sinks.cipher, true) ] in
  let engine = Bytesearch.Engine.create app.G.dex in
  Alcotest.(check bool) "fresh engine is unstamped" true
    (Bytesearch.Engine.ruleset_stamp engine = None);
  Alcotest.(check bool) "first stamp" true
    (Bytesearch.Engine.note_ruleset engine 7 = `First);
  Alcotest.(check bool) "same stamp" true
    (Bytesearch.Engine.note_ruleset engine 7 = `Same);
  Alcotest.(check bool) "changed stamp" true
    (Bytesearch.Engine.note_ruleset engine 8 = `Changed);
  Alcotest.(check bool) "stamp sticks" true
    (Bytesearch.Engine.ruleset_stamp engine = Some 8)

let test_snapshot_stamp () =
  let app = make_app ~seed:44 [ (Shape.Direct, Sinks.cipher, true) ] in
  let engine = Bytesearch.Engine.create app.G.dex in
  let hash = Rule.hash_list Builtin.extended in
  let path = Filename.temp_file "bdrules" ".bdix" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       ignore (Store.Snapshot.save ~ruleset_hash:hash ~path engine);
       match Store.Snapshot.load ~path app.G.program with
       | Error e -> Alcotest.fail (Store.Codec.error_to_string e)
       | Ok warm ->
         Alcotest.(check bool) "warm engine carries the saved stamp" true
           (Bytesearch.Engine.ruleset_stamp warm = Some hash);
         Alcotest.(check bool) "same rule set is not a change" true
           (Bytesearch.Engine.note_ruleset warm hash = `Same);
         Alcotest.(check bool) "different rule set is flagged" true
           (Bytesearch.Engine.note_ruleset warm (hash + 1) = `Changed))

let test_snapshot_unstamped () =
  let app = make_app ~seed:45 [ (Shape.Direct, Sinks.cipher, true) ] in
  let engine = Bytesearch.Engine.create app.G.dex in
  let path = Filename.temp_file "bdrules" ".bdix" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       ignore (Store.Snapshot.save ~path engine);
       match Store.Snapshot.load ~path app.G.program with
       | Error e -> Alcotest.fail (Store.Codec.error_to_string e)
       | Ok warm ->
         Alcotest.(check bool) "no stamp section, no stamp" true
           (Bytesearch.Engine.ruleset_stamp warm = None))

(* End to end: the corpus warm-cache scenario where the rule set changed
   between runs.  Run 1 analyzes under rule set A and saves the snapshot
   (stamped A, as the corpus cache does).  Run 2 warm-loads it but analyzes
   under rule set B: the stamp mismatch must be noticed — a warning is
   logged and the engine's query cache flushed — and the warm reports must
   be identical to a cold analysis under B. *)
let test_warm_cache_ruleset_change () =
  let app =
    make_app ~seed:46 ~filler:4
      [ (Shape.Direct, Sinks.cipher, true);
        (Shape.Static_chain, Sinks.sms, false) ]
  in
  let rules_a = Builtin.primary and rules_b = Builtin.extended in
  let path = Filename.temp_file "bdrules_warm" ".bdix" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (* run 1: cold under A; save stamps the snapshot with the engine's own
     rule-set hash, which analyze just set to A's *)
  let e0 = Bytesearch.Engine.create ~eager:true app.G.dex in
  let _ =
    Driver.analyze ~cfg:(with_rules rules_a) ~engine:e0 ~dex:app.G.dex
      ~manifest:app.G.manifest ()
  in
  ignore (Store.Snapshot.save ~path e0);
  (* run 2: warm load, then analyze under B *)
  let warm =
    match Store.Snapshot.load ~path app.G.program with
    | Ok e -> e
    | Error e -> Alcotest.fail (Store.Codec.error_to_string e)
  in
  Alcotest.(check bool) "warm engine carries A's stamp" true
    (Bytesearch.Engine.ruleset_stamp warm = Some (Rule.hash_list rules_a));
  let warned = ref false in
  let prev_reporter = Logs.reporter () in
  let prev_level = Logs.Src.level Backdroid.Log.src in
  Logs.Src.set_level Backdroid.Log.src (Some Logs.Warning);
  Logs.set_reporter
    { Logs.report =
        (fun _src level ~over k _msgf ->
           if level = Logs.Warning then warned := true;
           over ();
           k ()) };
  let warm_r =
    Fun.protect
      ~finally:(fun () ->
        Logs.set_reporter prev_reporter;
        Logs.Src.set_level Backdroid.Log.src prev_level)
      (fun () ->
         Driver.analyze ~cfg:(with_rules rules_b) ~engine:warm ~dex:app.G.dex
           ~manifest:app.G.manifest ())
  in
  Alcotest.(check bool) "stamp mismatch logged a warning" true !warned;
  Alcotest.(check bool) "engine re-stamped with B" true
    (Bytesearch.Engine.ruleset_stamp warm = Some (Rule.hash_list rules_b));
  let cold_r = analyze ~cfg:(with_rules rules_b) app in
  Alcotest.(check bool) "fixture is non-trivial" true (keys cold_r <> []);
  Alcotest.(check bool) "warm reports under B == cold reports under B" true
    (keys warm_r = keys cold_r)

(* ------------------------------------------------------------------ *)

let cases =
  [ Alcotest.test_case "extended set round-trips through the file syntax"
      `Quick test_roundtrip;
    Alcotest.test_case "content hash is change-sensitive" `Quick
      test_hash_sensitivity;
    Alcotest.test_case "syntax error is positioned" `Quick test_error_syntax;
    Alcotest.test_case "missing name is typed" `Quick test_error_missing_name;
    Alcotest.test_case "missing sink is typed" `Quick test_error_missing_sink;
    Alcotest.test_case "arg out of range is typed" `Quick test_error_arg_range;
    Alcotest.test_case "unknown predicate is typed" `Quick
      test_error_unknown_pred;
    Alcotest.test_case "unknown fact shape is typed" `Quick
      test_error_unknown_shape;
    Alcotest.test_case "duplicate rule name is typed" `Quick
      test_error_duplicate_rule;
    Alcotest.test_case "duplicate field is typed" `Quick
      test_error_duplicate_field;
    Alcotest.test_case "diagnostics carry position and rule" `Quick
      test_error_to_string_positioned;
    Alcotest.test_case "shared sink group backtracks once" `Quick
      test_shared_group_slices_once;
    Alcotest.test_case "multi-rule == singles (--jobs 1)" `Quick
      (test_multi_equals_singles 1);
    Alcotest.test_case "multi-rule == singles (--jobs 4)" `Quick
      (test_multi_equals_singles 4);
    Alcotest.test_case "reports identical across jobs" `Quick
      test_jobs_equivalence;
    Alcotest.test_case "webview family fires / stays silent" `Quick
      (check_family Shape.Webview_misuse Sinks.webview_js
         [ "webview-js"; "webview-bridge" ]);
    Alcotest.test_case "sql-injection family fires / stays silent" `Quick
      (check_family Shape.Sql_injection Sinks.sql_query [ "sql-injection" ]);
    Alcotest.test_case "intent-redirect family fires / stays silent" `Quick
      (check_family Shape.Intent_redirect Sinks.intent_redirect
         [ "intent-redirect" ]);
    Alcotest.test_case "engine rule-set stamp transitions" `Quick
      test_engine_stamp;
    Alcotest.test_case "snapshot carries the rule-set stamp" `Quick
      test_snapshot_stamp;
    Alcotest.test_case "unstamped snapshot stays unstamped" `Quick
      test_snapshot_unstamped;
    Alcotest.test_case "warm cache under a changed rule set" `Quick
      test_warm_cache_ruleset_change ]

let suites = [ ("rules.engine", cases) ]
