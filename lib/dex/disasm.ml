(** The "dexdump" of the pipeline: renders IR method bodies into
    dexdump-format plaintext instruction lines.  BackDroid's on-the-fly
    bytecode search is a text search over exactly this output.

    Each instruction line additionally carries a pre-classified, interned
    {!key}: the searchable operand (callee signature, class descriptor,
    field signature or quoted string literal) hash-consed at disassembly
    time.  The search engine's postings are built from these keys with no
    text re-parsing, and because queries intern through the same
    [Descriptor] memos, an indexed operand and the query that matches it are
    the same [Sym.t]. *)

(** The searchable operand of an instruction line, interned at disassembly
    time.  Mirrors the operand-extraction rules of the text search: the
    classified operand is exactly the text after the line's last [", "]. *)
type key =
  | K_invoke of Sym.t        (** [invoke-*]: dexdump callee signature *)
  | K_new_instance of Sym.t  (** [new-instance]: class descriptor *)
  | K_const_class of Sym.t   (** [const-class]: class descriptor *)
  | K_const_string of Sym.t  (** [const-string]: the quoted literal *)
  | K_field of Sym.t         (** [iget]/[iput]: field signature *)
  | K_static_field of Sym.t  (** [sget]/[sput]: field signature *)
  | K_none                   (** header or unsearchable instruction *)

type line = {
  mutable text : string;
      (** snapshot-loaded lines start as {!Textstore.pending} and are
          materialised from the off-heap store on first access (via
          [Dexfile.line_text]); disassembled lines carry real text *)
  owner : Ir.Jsig.meth option;  (** enclosing method for instruction lines *)
  owner_cls : string option;
  stmt_idx : int option;        (** IR statement index for diagnostics *)
  key : key;                    (** interned searchable operand *)
  tokens : Sym.t array option;
      (** distinct class-descriptor tokens of the line, sorted by symbol id;
          [None] = not computed (headers, snapshot-loaded lines) *)
}

let header text owner_cls =
  { text; owner = None; owner_cls; stmt_idx = None; key = K_none;
    tokens = None }

(* Keyed lines render class tokens only inside their operand (the text
   before the final ", " is mnemonics and registers), so the memoized
   operand tokenization covers them; unkeyed instruction lines (check-cast,
   new-array, …) tokenize their own text once, here, at render time. *)
let line_tokens ~text = function
  | K_invoke s | K_new_instance s | K_const_class s | K_const_string s
  | K_field s | K_static_field s -> Tokens.of_operand s
  | K_none -> Tokens.of_string text

let binop_mnemonic = function
  | Ir.Expr.Add -> "add-int" | Sub -> "sub-int" | Mul -> "mul-int"
  | Div -> "div-int" | Rem -> "rem-int" | Band -> "and-int" | Bor -> "or-int"
  | Bxor -> "xor-int" | Shl -> "shl-int" | Shr -> "shr-int"
  | Ushr -> "ushr-int" | Cmp -> "cmp-long"
  | Eq -> "if-eq" | Ne -> "if-ne" | Lt -> "if-lt" | Le -> "if-le"
  | Gt -> "if-gt" | Ge -> "if-ge"

let invoke_mnemonic = function
  | Ir.Expr.Virtual -> "invoke-virtual"
  | Special -> "invoke-direct"
  | Static -> "invoke-static"
  | Interface -> "invoke-interface"

(** Per-method register naming: IR locals map to [vN] in first-use order. *)
type regmap = { tbl : (string, int) Hashtbl.t; mutable next : int }

let reg rm (l : Ir.Value.local) =
  match Hashtbl.find_opt rm.tbl l.id with
  | Some n -> Printf.sprintf "v%d" n
  | None ->
    let n = rm.next in
    rm.next <- n + 1;
    Hashtbl.replace rm.tbl l.id n;
    Printf.sprintf "v%d" n

let value_reg rm = function
  | Ir.Value.Local l -> reg rm l
  | Ir.Value.Const c ->
    (* dexdump shows a register; constants are materialised by a preceding
       const instruction in real bytecode.  For inline constant operands we
       show the literal, which search never targets. *)
    (match c with
     | Ir.Value.Int_c i -> Printf.sprintf "#int %d" i
     | Null -> "#null"
     | Long_c i -> Printf.sprintf "#long %Ld" i
     | Float_c f | Double_c f -> Printf.sprintf "#float %f" f
     | Str_c s -> Printf.sprintf "%S" s
     | Class_c cl -> Sym.to_string (Descriptor.class_desc_sym cl))

(* Interned operand renderings: the interned string is spliced into the line
   text, so the symbol and the text share memory. *)
let meth_op m = Sym.to_string (Descriptor.meth_desc_sym m)
let class_op c = Sym.to_string (Descriptor.class_desc_sym c)
let field_op f = Sym.to_string (Descriptor.field_desc_sym f)

let invoke_line rm (iv : Ir.Expr.invoke) =
  let regs =
    (match iv.base with Some b -> [ reg rm b ] | None -> [])
    @ List.map (value_reg rm) iv.args
  in
  let callee = Descriptor.meth_desc_sym iv.callee in
  ( Printf.sprintf "%s {%s}, %s" (invoke_mnemonic iv.kind)
      (String.concat ", " regs)
      (Sym.to_string callee),
    K_invoke callee )

let stmt_lines rm idx (st : Ir.Stmt.t) =
  let one text = [ (text, K_none) ] in
  ignore idx;
  match st with
  | Assign (l, Imm (Const (Str_c s))) ->
    let lit = Sym.intern (Printf.sprintf "%S" s) in
    [ ( Printf.sprintf "const-string %s, %s" (reg rm l) (Sym.to_string lit),
        K_const_string lit ) ]
  | Assign (l, Imm (Const (Class_c c))) ->
    let cls = Descriptor.class_desc_sym c in
    [ ( Printf.sprintf "const-class %s, %s" (reg rm l) (Sym.to_string cls),
        K_const_class cls ) ]
  | Assign (l, Imm (Const (Int_c i))) ->
    one (Printf.sprintf "const/16 %s, #int %d" (reg rm l) i)
  | Assign (l, Imm (Const Null)) ->
    one (Printf.sprintf "const/4 %s, #int 0" (reg rm l))
  | Assign (l, Imm (Const (Long_c i))) ->
    one (Printf.sprintf "const-wide %s, #long %Ld" (reg rm l) i)
  | Assign (l, Imm (Const (Float_c f))) ->
    one (Printf.sprintf "const %s, #float %f" (reg rm l) f)
  | Assign (l, Imm (Const (Double_c f))) ->
    one (Printf.sprintf "const-wide %s, #double %f" (reg rm l) f)
  | Assign (l, Imm (Local x)) ->
    one (Printf.sprintf "move-object %s, %s" (reg rm l) (reg rm x))
  | Assign (l, Binop (op, a, b)) ->
    one (Printf.sprintf "%s %s, %s, %s" (binop_mnemonic op) (reg rm l)
           (value_reg rm a) (value_reg rm b))
  | Assign (l, Cast (t, v)) ->
    [ (Printf.sprintf "move-object %s, %s" (reg rm l) (value_reg rm v), K_none);
      ( Printf.sprintf "check-cast %s, %s" (reg rm l) (Descriptor.type_desc t),
        K_none ) ]
  | Assign (l, Invoke iv) ->
    [ invoke_line rm iv;
      (Printf.sprintf "move-result-object %s" (reg rm l), K_none) ]
  | Assign (l, New c) ->
    let cls = Descriptor.class_desc_sym c in
    [ ( Printf.sprintf "new-instance %s, %s" (reg rm l) (Sym.to_string cls),
        K_new_instance cls ) ]
  | Assign (l, New_array (t, n)) ->
    one (Printf.sprintf "new-array %s, %s, [%s" (reg rm l) (value_reg rm n)
           (Descriptor.type_desc t))
  | Assign (l, Array_get (a, i)) ->
    one (Printf.sprintf "aget-object %s, %s, %s" (reg rm l) (reg rm a)
           (value_reg rm i))
  | Assign (l, Instance_get (o, f)) ->
    let fld = Descriptor.field_desc_sym f in
    [ ( Printf.sprintf "iget-object %s, %s, %s" (reg rm l) (reg rm o)
          (Sym.to_string fld),
        K_field fld ) ]
  | Assign (l, Static_get f) ->
    let fld = Descriptor.field_desc_sym f in
    [ ( Printf.sprintf "sget-object %s, %s" (reg rm l) (Sym.to_string fld),
        K_static_field fld ) ]
  | Assign (l, Phi ls) ->
    one (Printf.sprintf ".phi %s = (%s)" (reg rm l)
           (String.concat ", " (List.map (reg rm) ls)))
  | Assign (l, Param i) -> one (Printf.sprintf ".param %s, p%d" (reg rm l) i)
  | Assign (l, This) -> one (Printf.sprintf ".this %s" (reg rm l))
  | Assign (l, Caught_exception) ->
    one (Printf.sprintf "move-exception %s" (reg rm l))
  | Assign (l, Length v) ->
    one (Printf.sprintf "array-length %s, %s" (reg rm l) (value_reg rm v))
  | Instance_put (o, f, v) ->
    let fld = Descriptor.field_desc_sym f in
    [ ( Printf.sprintf "iput-object %s, %s, %s" (value_reg rm v) (reg rm o)
          (Sym.to_string fld),
        K_field fld ) ]
  | Static_put (f, v) ->
    let fld = Descriptor.field_desc_sym f in
    [ ( Printf.sprintf "sput-object %s, %s" (value_reg rm v)
          (Sym.to_string fld),
        K_static_field fld ) ]
  | Array_put (a, i, v) ->
    one (Printf.sprintf "aput-object %s, %s, %s" (value_reg rm v) (reg rm a)
           (value_reg rm i))
  | Invoke iv -> [ invoke_line rm iv ]
  | Return (Some v) -> one (Printf.sprintf "return-object %s" (value_reg rm v))
  | Return None -> one "return-void"
  | If (op, a, b, target) ->
    one (Printf.sprintf "%s %s, %s, :cond_%04x" (binop_mnemonic op)
           (value_reg rm a) (value_reg rm b) target)
  | Goto target -> one (Printf.sprintf "goto :goto_%04x" target)
  | Throw v -> one (Printf.sprintf "throw %s" (value_reg rm v))
  | Nop -> one "nop"

let method_lines (cls : Ir.Jclass.t) (m : Ir.Jmethod.t) =
  let msig = m.msig in
  let head =
    header
      (Printf.sprintf "  method %s" (meth_op msig))
      (Some cls.name)
  in
  match m.body with
  | None -> [ head ]
  | Some body ->
    let rm = { tbl = Hashtbl.create 16; next = 0 } in
    let buf = ref [ head ] in
    Array.iteri
      (fun i st ->
         List.iter
           (fun (text, key) ->
              buf :=
                { text = Printf.sprintf "    %04x: %s" i text;
                  owner = Some msig; owner_cls = Some cls.name;
                  stmt_idx = Some i; key;
                  tokens = Some (line_tokens ~text key) }
                :: !buf)
           (stmt_lines rm i st))
      body;
    List.rev !buf

let class_lines (c : Ir.Jclass.t) =
  let head =
    [ header (Printf.sprintf "Class descriptor : '%s'" (class_op c.name))
        (Some c.name);
      header
        (Printf.sprintf "  Superclass : '%s'"
           (match c.super with Some s -> class_op s | None -> "-"))
        (Some c.name) ]
    @ List.map
        (fun i ->
           header (Printf.sprintf "  Interface : '%s'" (class_op i))
             (Some c.name))
        c.interfaces
    @ List.map
        (fun f ->
           header (Printf.sprintf "  field %s" (field_op f)) (Some c.name))
        c.fields
  in
  head @ List.concat_map (method_lines c) c.methods

(** Disassemble all non-system classes — the app dex content. *)
let program_lines p =
  let classes =
    Ir.Program.fold_classes p (fun c acc -> c :: acc) []
    |> List.filter (fun (c : Ir.Jclass.t) -> not c.is_system)
    |> List.sort (fun (a : Ir.Jclass.t) b -> String.compare a.name b.name)
  in
  List.concat_map class_lines classes
