lib/core/perapp_ssg.mli: Format Framework Ir Ssg
