(* Fig. 9 probe: BackDroid analysis time as a function of the number of
   sink API calls, at fixed app size.

   Usage: dune exec tools/sink_sweep_probe.exe *)
let time f = let t0 = Unix.gettimeofday () in let r = f () in (r, Unix.gettimeofday () -. t0)
let () =
  List.iter (fun (cfg : Appgen.Generator.config) ->
    let app = Appgen.Generator.generate cfg in
    let (_, t) = time (fun () -> Backdroid.Driver.analyze ~dex:app.dex ~manifest:app.manifest ()) in
    Printf.printf "sinks=%3d size=%6d bd=%.4fs\n%!" (List.length cfg.plants) app.size_stmts t)
    (Appgen.Corpus.sink_sweep ())
