lib/appgen/corpus.ml: Float Framework Generator List Printf Rng Shape
