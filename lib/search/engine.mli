(** The bytecode search engine: executes typed queries over the dexdump
    plaintext, returning hits mapped back to their enclosing methods, with
    query-level caching (Sec. IV-F).

    Three execution modes:
    - {b lazy indexed} (default): per-category postings — operand symbol id
      to sorted int-array of slots in the dexfile's hit {!Dex.Arena} — each
      built on the first query of that category, double-checked under a
      build mutex.  Categories never queried are never built.
    - {b eager indexed} ([eager:true]): all seven categories built at
      construction, sharded over a {!Parallel.Pool.t} when one is given.
      Kept for ablation and for front-loading the cost.
    - {b scan} ([indexed:false]): every query scans every line, like the
      paper's prototype shelling out to grep — the search-cost ablation
      baseline.

    All three return identical hits for every query (the property tests
    check this), so mode choice is purely a performance decision. *)

(** One matching plaintext line, materialised from an arena slot only when a
    query returns it. *)
type hit = {
  line_no : int;              (** position in the merged dex plaintext *)
  text : string;              (** the raw matching line *)
  owner : Ir.Jsig.meth;       (** enclosing method of the matching line *)
  owner_cls : string;         (** enclosing class *)
  stmt_idx : int option;      (** IR statement index, when the line is an
                                  instruction *)
}

type t

(** One category's postings in packed CSR form — the serialization boundary
    between the engine and the snapshot store.  [keys] holds the strictly
    ascending operand symbol ids; key [k]'s slots are strictly ascending in
    arena order.  Two bodies share the shape: [Flat] random-access slot
    vectors (in-process builds, v1 snapshots) and [Coded] per-key compressed
    runs — varint deltas or bitmap words, see {!Postcodec} — decoded on
    demand (v2 snapshots).  All vectors are off-heap; the flat layout is
    deterministic: sequential, pool-sharded and snapshot-loaded builds of
    the same arena are byte-identical. *)
module Packed : sig
  type body = Flat of Ivec.t | Coded of Bvec.t

  type t = { keys : Ivec.t; offsets : Ivec.t; body : body }

  val n_slots : t -> int
  val n_keys : t -> int

  (** Slot count of key index [k] — O(1) for both bodies. *)
  val count : t -> int -> int

  (** Apply [f] to each slot of key index [k], ascending. *)
  val iter_key : t -> int -> (int -> unit) -> unit

  (** Payload size in bytes (mapped or heap-side). *)
  val bytes : t -> int

  (** Decode to a [Flat] body; identity when already flat. *)
  val to_flat : t -> t
end

(** Build an engine over a disassembled app.  [indexed] (default true)
    selects the postings-backed mode; [eager] (default false) builds all
    postings categories up front instead of on first use.  [pool] shards
    eager construction across the pool's domains (per-domain slices of the
    hit arena built into domain-local tables, then merged in slice order);
    the resulting postings are identical to the sequential build.  Lazy
    builds are always sequential — they can trigger inside pool tasks, where
    sharding over the same pool could re-enter the engine's locks (see
    engine.ml).  Queries against the engine are safe from multiple domains:
    the query cache is mutex-guarded and hit/miss counters are
    scheduling-independent. *)
val create :
  ?indexed:bool -> ?eager:bool -> ?pool:Parallel.Pool.t -> Dex.Dexfile.t -> t

(** All seven categories in packed form, in category order, building any not
    yet built (sharded over the engine's pool when it has one) — the
    snapshot save path. *)
val export_packed : t -> Packed.t array

(** An indexed engine whose postings are installed wholesale — the snapshot
    load and delta-patch paths.  The array must hold one table per category,
    in category order.  {!index_mode} reports [mode] (default
    ["snapshot"]; {!Store.Snapshot}'s delta path passes ["delta"]). *)
val create_packed : ?mode:string -> Dex.Dexfile.t -> Packed.t array -> t

(** The program the engine's dexfile was disassembled from — the "program
    analysis space" paired with this "bytecode search space". *)
val program : t -> Ir.Program.t

(** The dexfile the engine searches (the snapshot save path serializes its
    lines and arena alongside the packed postings). *)
val dexfile : t -> Dex.Dexfile.t

(** Stamp the engine with the content hash of the rule set about to drive
    its searches.  [`First] on a fresh engine, [`Same] when the hash matches
    the previous stamp, [`Changed] when it differs — in which case the query
    cache has been flushed, so no search state crosses rule sets. *)
val note_ruleset : t -> int -> [ `First | `Same | `Changed ]

(** The rule-set hash last stamped on this engine, if any. *)
val ruleset_stamp : t -> int option

(** Execute a query, consulting the query cache first. *)
val run : t -> Query.t -> hit list

(** Execute a query bypassing the query cache (used by the ablation
    benchmarks to measure raw query cost).  Still builds lazy postings on
    first use. *)
val run_uncached : t -> Query.t -> hit list

(** [run_conj t (primary :: conjuncts)] is [run t primary] restricted to
    hits whose enclosing method also matches every conjunct — "methods that
    invoke [X] and reference [Y]".  The result is order-independent; the
    planner evaluates conjuncts rarest-first (ascending O(1) postings
    count, [Raw] and scan-mode queries last) and short-circuits to [[]] on
    the first empty owner intersection, skipping the denser lists and the
    primary itself.  [run_conj t []] is [[]]; [run_conj t [q]] is
    [run t q]. *)
val run_conj : t -> Query.t list -> hit list

(** ["scan"], ["lazy"], ["eager"], ["snapshot"] or ["delta"]. *)
val index_mode : t -> string

(** Number of postings categories built so far (0-7).  Lazy engines build
    strictly fewer than eager ones unless every category was queried. *)
val built_categories : t -> int

(** Bytes held by the postings built so far (mapped or heap-side) — lets
    the bench compare v1 flat-slot and v2 packed footprints. *)
val postings_footprint : t -> int

(** Per-category postings build cost: [(category name, µs)] for each
    category built so far, in category order. *)
val index_build_timings : t -> (string * float) list

(** Fraction of search commands served from the cache, in [0, 1]. *)
val cache_rate : t -> float

val total_searches : t -> int
val cached_searches : t -> int

(** The calling domain's cumulative query-issue counters
    ({!Cache.local_counts}) — deltas around a slice feed its provenance
    ledger. *)
val local_counts : unit -> Cache.local_counts

(** Per-category totals: (category, total searches, cache hits). *)
val category_stats : t -> (Query.category * int * int) list

(** Per-category accumulated compute cost: µs spent computing this
    category's cache misses (hits cost nothing). *)
val category_timings : t -> (Query.category * float) list
