lib/eval/stats.ml: List
