(** Code shapes a planted sink flow can take.  Each shape stresses one of the
    bytecode-search mechanisms of Sec. IV, or one documented weakness of the
    whole-app baseline (Sec. VI-C). *)

type t =
  | Direct            (** entry → private method → static chain → sink *)
  | Static_chain      (** entry → static methods only → sink *)
  | Child_class       (** callee invoked through a non-overloading child class *)
  | Super_class       (** callee invoked through its super-class type *)
  | Interface_dispatch  (** callee invoked through an app interface *)
  | Callback          (** View.setOnClickListener → onClick *)
  | Async_thread      (** new Thread(runnable).start() → run() *)
  | Async_executor    (** Executor.execute(runnable) → run(), via util chain *)
  | Async_task        (** AsyncTask.execute() → doInBackground() *)
  | Static_init       (** sink under a <clinit>; recursive class-use search *)
  | Clinit_field      (** sink param from a static field set in an off-path <clinit> *)
  | Icc_explicit      (** startService(new Intent(ctx, C.class)) → onStartCommand *)
  | Icc_implicit      (** sendBroadcast(action) → matching receiver's onReceive *)
  | Lifecycle_field   (** value set in onCreate, used in onResume *)
  | Dead_code         (** sink in a never-invoked method — must NOT be reported *)
  | Unregistered_component
      (** sink only reachable from a component absent from the manifest —
          must NOT be reported (Amandroid FP class) *)
  | Skipped_lib       (** sink inside a package on Amandroid's liblist *)
  | Subclassed_sink
      (** sink API invoked via an app subclass of the sink's system class —
          BackDroid's documented FN unless the hierarchy-aware initial search
          is enabled *)
  | Recursive_chain
      (** mutually recursive methods on the path to the sink — exercises the
          dead-method-loop detection of Sec. IV-F *)
  | Shared_util
      (** several sink calls behind one shared utility class, so different
          sinks re-explore the same backward paths — exercises the
          search-command cache of Sec. IV-F *)
  | Reflective_sink
      (** the sink's containing method is only invoked through Java
          reflection — missed unless reflection resolution is enabled
          (Sec. VII) *)
  | Builder_spec
      (** the cipher transformation string is assembled with a StringBuilder
          — resolved only through the API models of Sec. V-B *)
  | Webview_misuse
      (** a WebView configured insecurely (setJavaScriptEnabled(true) plus a
          JavaScript bridge) or safely (JS disabled, no bridge) *)
  | Sql_injection
      (** rawQuery over a string read from the launching Intent of an
          exported component (insecure) or a constant query (safe) *)
  | Intent_redirect
      (** an exported activity forwarding its launching Intent verbatim to
          startActivity (insecure) or launching a fixed in-app Intent
          (safe) *)

let all =
  [ Direct; Static_chain; Child_class; Super_class; Interface_dispatch;
    Callback; Async_thread; Async_executor; Async_task; Static_init;
    Clinit_field; Icc_explicit; Icc_implicit; Lifecycle_field; Dead_code;
    Unregistered_component; Skipped_lib; Subclassed_sink; Recursive_chain;
    Shared_util; Reflective_sink; Builder_spec; Webview_misuse; Sql_injection;
    Intent_redirect ]

let to_string = function
  | Direct -> "direct"
  | Static_chain -> "static-chain"
  | Child_class -> "child-class"
  | Super_class -> "super-class"
  | Interface_dispatch -> "interface"
  | Callback -> "callback"
  | Async_thread -> "async-thread"
  | Async_executor -> "async-executor"
  | Async_task -> "async-task"
  | Static_init -> "static-init"
  | Clinit_field -> "clinit-field"
  | Icc_explicit -> "icc-explicit"
  | Icc_implicit -> "icc-implicit"
  | Lifecycle_field -> "lifecycle-field"
  | Dead_code -> "dead-code"
  | Unregistered_component -> "unregistered-component"
  | Skipped_lib -> "skipped-lib"
  | Subclassed_sink -> "subclassed-sink"
  | Recursive_chain -> "recursive-chain"
  | Shared_util -> "shared-util"
  | Reflective_sink -> "reflective-sink"
  | Builder_spec -> "builder-spec"
  | Webview_misuse -> "webview-misuse"
  | Sql_injection -> "sql-injection"
  | Intent_redirect -> "intent-redirect"

(** Is a flow of this shape actually reachable from a registered entry
    point?  (Ground truth for detection scoring.) *)
let reachable = function
  | Dead_code | Unregistered_component -> false
  | Direct | Static_chain | Child_class | Super_class | Interface_dispatch
  | Callback | Async_thread | Async_executor | Async_task | Static_init
  | Clinit_field | Icc_explicit | Icc_implicit | Lifecycle_field
  | Skipped_lib | Subclassed_sink | Recursive_chain | Shared_util
  | Reflective_sink | Builder_spec | Webview_misuse | Sql_injection
  | Intent_redirect -> true
