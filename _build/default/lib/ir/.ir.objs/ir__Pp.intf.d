lib/ir/pp.mli: Format Jclass Jmethod Program
