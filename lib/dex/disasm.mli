(** The "dexdump" of the pipeline: renders IR method bodies into
    dexdump-format plaintext instruction lines.  BackDroid's on-the-fly
    bytecode search is a text search over exactly this output.

    Each instruction line carries a pre-classified, interned {!key}: the
    searchable operand (callee signature, class descriptor, field signature
    or quoted string literal), hash-consed at disassembly time.  Search
    postings are built from these keys with no text re-parsing; queries
    intern through the same [Descriptor] memos, so an indexed operand and
    the query that must match it are the same [Sym.t]. *)

(** The searchable operand of an instruction line.  Mirrors the
    operand-extraction rule of the text search (the operand is the text
    after the line's last [", "]), but is computed from the IR, so operands
    containing [", "] — e.g. string literals — are classified correctly. *)
type key =
  | K_invoke of Sym.t        (** [invoke-*]: dexdump callee signature *)
  | K_new_instance of Sym.t  (** [new-instance]: class descriptor *)
  | K_const_class of Sym.t   (** [const-class]: class descriptor *)
  | K_const_string of Sym.t  (** [const-string]: the quoted literal *)
  | K_field of Sym.t         (** [iget]/[iput]: field signature *)
  | K_static_field of Sym.t  (** [sget]/[sput]: field signature *)
  | K_none                   (** header or unsearchable instruction *)

type line = {
  mutable text : string;
      (** snapshot-loaded lines start as {!Textstore.pending} and are
          materialised lazily via [Dexfile.line_text]; disassembled lines
          carry real text *)
  owner : Ir.Jsig.meth option;
  owner_cls : string option;
  stmt_idx : int option;
  key : key;
  tokens : Sym.t array option;
      (** distinct class-descriptor tokens of the line, sorted by symbol
          id, attached at render time ({!Tokens}); [None] = not computed
          (headers, snapshot-loaded lines — consumers re-tokenize
          {!line.text} via {!Tokens.of_string}) *)
}

val header : string -> string option -> line
val binop_mnemonic : Ir.Expr.binop -> string
val invoke_mnemonic : Ir.Expr.invoke_kind -> string

(** Per-method register naming: IR locals map to [vN] in first-use order. *)
type regmap = { tbl : (string, int) Hashtbl.t; mutable next : int; }
val reg : regmap -> Ir.Value.local -> string
val value_reg : regmap -> Ir.Value.t -> string

(** Rendered instruction text paired with its interned searchable operand. *)
val invoke_line : regmap -> Ir.Expr.invoke -> string * key
val stmt_lines : regmap -> 'a -> Ir.Stmt.t -> (string * key) list
val method_lines : Ir.Jclass.t -> Ir.Jmethod.t -> line list
val class_lines : Ir.Jclass.t -> line list

(** Disassemble all non-system classes — the app dex content. *)
val program_lines : Ir.Program.t -> line list
