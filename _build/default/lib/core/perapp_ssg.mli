(** The per-app SSG the paper plans as future work (Sec. V-A, Sec. VI-D):
    the union of all per-sink SSGs of one app, deduplicated, so that no
    matter how many sinks there are, only one partial-app graph has to be
    kept. *)

module Sinks = Framework.Sinks
type t = {
  sinks : (Sinks.t * Ir.Jsig.meth * int) list;
  nodes : Ssg.unit_ list;
  edges : Ssg.edge list;
  entry_methods : Ir.Jsig.meth list;
  static_track : Ir.Jsig.meth list;
  reachable_sinks : int;
}
val edge_key : Ssg.edge -> string

(** Merge per-sink SSGs into the per-app graph. *)
val merge : Ssg.t list -> t
val node_count : t -> int
val edge_count : t -> int
val pp : Format.formatter -> t -> unit
