(** A whole program: the class table plus hierarchy queries and (CHA-style)
    virtual-dispatch resolution.  This is the "program analysis space" side of
    BackDroid; the "bytecode search space" is derived from it by
    {!module:Dex.Disasm}. *)

type t = {
  classes : (string, Jclass.t) Hashtbl.t;
  mutable subclass_cache : (string, string list) Hashtbl.t option;
  dispatch_cache : (string * string, (string * Jmethod.t) list) Hashtbl.t;
}

let create () =
  { classes = Hashtbl.create 512; subclass_cache = None;
    dispatch_cache = Hashtbl.create 1024 }

let add_class p (c : Jclass.t) =
  Hashtbl.replace p.classes c.name c;
  p.subclass_cache <- None;
  Hashtbl.reset p.dispatch_cache

let of_classes cs =
  let p = create () in
  List.iter (add_class p) cs;
  p

let find_class p name = Hashtbl.find_opt p.classes name

let iter_classes p f = Hashtbl.iter (fun _ c -> f c) p.classes

let fold_classes p f init =
  Hashtbl.fold (fun _ c acc -> f c acc) p.classes init

let app_classes p =
  fold_classes p (fun c acc -> if c.Jclass.is_system then acc else c :: acc) []

let find_method p (msig : Jsig.meth) =
  match find_class p msig.cls with
  | None -> None
  | Some c -> Jclass.find_method c ~name:msig.name ~params:msig.params

(** Walk up the superclass chain starting from (and excluding) [name]. *)
let superclasses p name =
  let rec go acc n =
    match find_class p n with
    | None -> List.rev acc
    | Some c ->
      (match c.super with
       | None -> List.rev acc
       | Some s -> go (s :: acc) s)
  in
  go [] name

(** All interfaces implemented by [name], transitively (through both the
    superclass chain and super-interfaces). *)
let interfaces_of p name =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec add_iface i =
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.replace seen i ();
      acc := i :: !acc;
      match find_class p i with
      | Some ic -> List.iter add_iface ic.interfaces
      | None -> ()
    end
  in
  let rec walk n =
    match find_class p n with
    | None -> ()
    | Some c ->
      List.iter add_iface c.interfaces;
      (match c.super with Some s -> walk s | None -> ())
  in
  walk name;
  List.rev !acc

let rebuild_subclass_cache p =
  let tbl = Hashtbl.create 256 in
  let add parent child =
    let prev = Option.value ~default:[] (Hashtbl.find_opt tbl parent) in
    Hashtbl.replace tbl parent (child :: prev)
  in
  iter_classes p (fun c ->
      (match c.super with Some s -> add s c.name | None -> ());
      List.iter (fun i -> add i c.name) c.interfaces);
  p.subclass_cache <- Some tbl;
  tbl

let direct_subclasses p name =
  let tbl =
    match p.subclass_cache with
    | Some t -> t
    | None -> rebuild_subclass_cache p
  in
  Option.value ~default:[] (Hashtbl.find_opt tbl name)

(** All strict subclasses (and, for interfaces, implementers) of [name]. *)
let subclasses_transitive p name =
  let seen = Hashtbl.create 16 in
  let rec go n acc =
    List.fold_left
      (fun acc child ->
         if Hashtbl.mem seen child then acc
         else begin
           Hashtbl.replace seen child ();
           go child (child :: acc)
         end)
      acc (direct_subclasses p n)
  in
  List.rev (go name [])

let is_subclass_of p ~sub ~super =
  String.equal sub super
  || List.exists (String.equal super) (superclasses p sub)
  || List.exists (String.equal super) (interfaces_of p sub)

(** Resolve a sub-signature against [cls], walking up the hierarchy as the VM
    would.  Returns the concrete declaring method, if any. *)
let resolve_method p cls subsig =
  let rec go n =
    match find_class p n with
    | None -> None
    | Some c ->
      (match Jclass.find_method_by_subsig c subsig with
       | Some m -> Some (c, m)
       | None -> (match c.super with Some s -> go s | None -> None))
  in
  go cls

(** CHA dispatch: all concrete methods an [invoke-virtual] /
    [invoke-interface] on static receiver type [cls] with [subsig] may reach.
    Considers the resolved method in [cls] itself plus every overriding
    definition in subclasses / implementers. *)
let dispatch_targets_uncached p cls subsig =
  let targets = ref [] in
  let add (c : Jclass.t) (m : Jmethod.t) =
    if (not m.access.is_abstract) && not c.is_interface then
      targets := (c.name, m) :: !targets
  in
  (match resolve_method p cls subsig with
   | Some (c, m) -> add c m
   | None -> ());
  List.iter
    (fun sub ->
       match find_class p sub with
       | Some c ->
         (match Jclass.find_method_by_subsig c subsig with
          | Some m -> add c m
          | None -> ())
       | None -> ())
    (subclasses_transitive p cls);
  List.rev !targets

let dispatch_targets p cls subsig =
  match Hashtbl.find_opt p.dispatch_cache (cls, subsig) with
  | Some ts -> ts
  | None ->
    let ts = dispatch_targets_uncached p cls subsig in
    Hashtbl.replace p.dispatch_cache (cls, subsig) ts;
    ts

(** Does any strict subclass of [cls] override [subsig]?  Drives the paper's
    child-class signature-search rule (Sec. IV-A). *)
let subclass_overrides p cls subsig =
  List.exists
    (fun sub ->
       match find_class p sub with
       | Some c -> Option.is_some (Jclass.find_method_by_subsig c subsig)
       | None -> false)
    (subclasses_transitive p cls)

(** Does [msig]'s method override a method declared in a superclass or
    interface of its class?  Such callees need the advanced search. *)
let overrides_foreign_declaration p (msig : Jsig.meth) =
  let subsig = Jsig.sub_signature msig in
  let declares n =
    match find_class p n with
    | Some c -> Option.is_some (Jclass.find_method_by_subsig c subsig)
    | None -> false
  in
  List.exists declares (superclasses p msig.cls)
  || List.exists declares (interfaces_of p msig.cls)

(** Total number of statements in app (non-system) method bodies — our
    size metric, standing in for APK megabytes. *)
let code_size p =
  fold_classes p
    (fun c acc ->
       if c.Jclass.is_system then acc
       else
         acc
         + List.fold_left (fun a m -> a + Jmethod.stmt_count m) 0 c.methods)
    0

let method_count p =
  fold_classes p
    (fun c acc ->
       if c.Jclass.is_system then acc else acc + List.length c.methods)
    0

let class_count p =
  fold_classes p
    (fun c acc -> if c.Jclass.is_system then acc else acc + 1)
    0
