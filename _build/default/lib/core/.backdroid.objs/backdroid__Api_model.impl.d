lib/core/api_model.ml: Expr Facts Framework Hashtbl Ir Jsig List Option Printf Types
