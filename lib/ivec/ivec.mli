(** Flat int vectors backed by [Bigarray]: the payload lives outside the
    OCaml heap, so the GC neither traces nor copies it.  The hit arena's
    columns and the search engine's packed postings are [Ivec.t]s, which is
    what lets a snapshot load map them straight from a file ([Unix.map_file]
    yields exactly this type) instead of rebuilding them on the heap.

    The type is exposed transparently so producers that already hold a
    bigarray (an mmapped section, say) need no copy. *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(** [create n] is an uninitialised off-heap vector of [n] ints. *)
val create : int -> t

(** [make n x] is [create n] filled with [x]. *)
val make : int -> int -> t

val length : t -> int

val get : t -> int -> int
val set : t -> int -> int -> unit

(** Unchecked access — callers must guarantee [0 <= i < length]. *)
val unsafe_get : t -> int -> int

val of_array : int array -> t
val to_array : t -> int array

(** [iteri f v] applies [f i v.(i)] in index order. *)
val iteri : (int -> int -> unit) -> t -> unit

(** Structural equality on lengths and elements. *)
val equal : t -> t -> bool

(** [find_sorted v x] is the index of [x] in the strictly ascending vector
    [v], or [-1] when absent (binary search, no allocation). *)
val find_sorted : t -> int -> int

(** [prefault v] touches one element per page (4 KiB stride) in order,
    forcing the kernel to populate page-table entries for a lazily mapped
    vector up front instead of on the first query that walks it.  Returns a
    value dependent on the elements read so the traversal cannot be
    optimised away. *)
val prefault : t -> int

