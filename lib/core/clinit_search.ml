(** Special search over static initializers (Sec. IV-C).

    [<clinit>] methods are never invoked explicitly, so BackDroid instead
    performs a recursive class-use search: find the classes whose code uses
    the initializer's class, check whether any is a registered entry
    component, and repeat over the using classes until an entry class is
    found or no new class appears.  Only control-flow reachability is
    decided — [<clinit>] has no parameters, hence no dataflow mapping. *)

open Ir

(** Classes whose instruction lines mention [cls] (excluding [cls] itself). *)
let using_classes engine cls =
  let desc = Sigformat.to_dex_class_sym cls in
  let hits = Bytesearch.Engine.run engine (Bytesearch.Query.class_use_sym desc) in
  List.sort_uniq String.compare
    (List.filter_map
       (fun (h : Bytesearch.Engine.hit) ->
          if String.equal h.owner_cls cls then None else Some h.owner_cls)
       hits)

(** Is [clinit_owner]'s initializer reachable from a registered entry
    component?  Also returns the class-use chain discovered (for
    diagnostics). *)
let reachable engine (manifest : Manifest.App_manifest.t) ~clinit_owner =
  let seen = Hashtbl.create 16 in
  Log.debug (fun m -> m "recursive class-use search from %s" clinit_owner);
  let rec go frontier chain =
    match frontier with
    | [] -> false, List.rev chain
    | cls :: rest ->
      if Hashtbl.mem seen cls then go rest chain
      else begin
        Hashtbl.replace seen cls ();
        if Manifest.App_manifest.is_entry_class manifest cls then
          true, List.rev (cls :: chain)
        else begin
          let users = using_classes engine cls in
          let fresh = List.filter (fun u -> not (Hashtbl.mem seen u)) users in
          go (rest @ fresh) (cls :: chain)
        end
      end
  in
  go [ clinit_owner ] []

(** Convenience wrapper for a [<clinit>] method signature. *)
let clinit_reachable engine manifest (m : Jsig.meth) =
  assert (Jsig.is_clinit m);
  reachable engine manifest ~clinit_owner:m.cls
