lib/ir/jmethod.ml: Array Expr Jsig List Stmt
