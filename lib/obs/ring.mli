(** Lock-free per-domain ring buffers: the storage layer of the flight
    recorder ({!Flight}).

    Unlike {!Span.Recorder}, which {e drops} once a shard is full (a
    profile wants the beginning of the run), a ring {e wraps} — it always
    retains the most recent [capacity] items per domain, which is what a
    post-mortem wants.  The hot path is one [Domain.DLS] lookup plus an
    array store: each domain owns its shard exclusively, so no mutex and
    no atomic RMW is ever taken while recording.  A domain returns its
    shard to a free list on exit and the next domain reuses it, so the
    short-lived per-call pools of [Driver.analyze] cannot grow the shard
    registry (or the retained-event heap) without bound. *)

type 'a t

(** [create ~capacity ()] makes an empty ring retaining at most
    [capacity] items per domain (default [4096], floored at [16]). *)
val create : ?capacity:int -> unit -> 'a t

val capacity : 'a t -> int

(** Append on the calling domain's shard, overwriting the oldest item
    once the shard is at capacity.  Lock-free; safe from any domain. *)
val push : 'a t -> 'a -> unit

(** Retained items, oldest-first within each shard, shards concatenated
    in registration order (callers carrying timestamps sort afterwards).
    Call after the recording workload quiesces — pool batches settle
    through the pool's own mutex, which publishes the shard writes. *)
val snapshot : 'a t -> 'a list

(** Items currently retained across all shards. *)
val length : 'a t -> int

(** Items ever pushed across all shards (retained + overwritten). *)
val total : 'a t -> int

(** Items overwritten by wrap-around (= [total - length]). *)
val overwritten : 'a t -> int

(** Empty every shard (the shards themselves stay registered). *)
val clear : 'a t -> unit
