(** The Amandroid-style baseline: whole-app inter-procedural dataflow
    analysis.  It first constructs the whole-app call graph from all entry
    points, then runs a context-sensitive forward constant / points-to
    analysis over every reachable method (memoised per method and abstract
    calling context), evaluating the parameters of every sink API call it
    executes.

    The documented behaviours of the real tool are reproduced through
    {!Callgraph.config}: liblist package skipping, the missing
    Executor/AsyncTask/onClick edges, unregistered components treated as
    entries (false positives), plus a per-app simulated "occasional internal
    error" knob standing in for the "Could not find procedure" / "key not
    found" failures of Sec. VI-C (see DESIGN.md). *)

module Facts = Backdroid.Facts
module Api_model = Backdroid.Api_model
module Detectors = Backdroid.Detectors
module Sinks = Framework.Sinks
exception Timeout
exception Internal_error of string
type config = {
  cg : Callgraph.config;
  sinks : Sinks.t list;
  error_rate : float;
  max_inline_depth : int;
  context_widening : int;
  deadline : float option;
}
val default_config : config
type finding = {
  sink : Sinks.t;
  meth : Ir.Jsig.meth;
  site : int;
  fact : Facts.t;
  verdict : Detectors.verdict;
}
type outcome = Completed of finding list | Timed_out | Errored of string
type result = {
  outcome : outcome;
  cg_methods : int;
  cg_edges : int;
  contexts : int;
}

(** Run the full whole-app analysis of one app: call-graph construction
    from all entry points, then the context-sensitive dataflow over every
    reachable method, honouring [deadline] and the simulated error knob. *)
val analyze :
  ?cfg:config ->
  program:Ir.Program.t -> manifest:Manifest.App_manifest.t -> unit -> result

(** Insecure findings of a completed run ([] on timeout / error). *)
val insecure_findings : outcome -> finding list
