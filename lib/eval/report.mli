(** Machine-readable exports of the experiment measurements: one CSV row per
    (app, tool) measurement, so the tables and figures can be re-plotted
    outside the harness.  Every row carries one [insecure_<family>] column
    per built-in rule family ({!Rules.Builtin.family_names} order) after the
    aggregate fields. *)

val csv_header : string

(** Render one measurement as a CSV row (no trailing newline). *)
val csv_row : Runner.measurement -> string

(** Write all measurements of a corpus run to [path]. *)
val write_csv : string -> Runner.measurement list -> unit

(** Parse one row back (used by the round-trip test); [None] on malformed
    input. *)
val parse_row : string -> Runner.measurement option
