lib/baseline/cha.mli: Ir
