(** Runs each tool over generated apps with wall-clock timing and (for the
    whole-app baselines) a real timeout, collecting the per-app measurements
    the experiments aggregate. *)

module G = Appgen.Generator
type tool = Backdroid_tool | Amandroid_tool | Flowdroid_cg_tool
val tool_name : tool -> string
type measurement = {
  app : string;
  tool : tool;
  seconds : float;
  timed_out : bool;
  errored : bool;
  sink_calls : int;
  size_stmts : int;
  size_mb : float;
  insecure : int;
  insecure_by_rule : (string * int) list;
      (** per rule family, in {!Rules.Builtin.family_names} order,
          zero-count families dropped *)
  search_cache_rate : float;
  sink_cache_rate : float;
  loops : int;
  cross_backward_loops : int;
  partial_sinks : int;
      (** BackDroid only: sink slices that exhausted their budget *)
  parallelism : int;    (** worker-pool size the measurement ran under *)
  incremental : bool;
      (** BackDroid only: the engine was delta-patched from an older
          snapshot ({!Store.Snapshot.delta}) instead of built from
          scratch *)
  resolutions : int;
      (** BackDroid only: caller resolutions taken by fresh slices,
          summed over the per-sink {!Backdroid.Provenance} ledgers *)
  resolved_callers : int;
      (** BackDroid only: callers those resolutions produced *)
  work_spent : int;
      (** BackDroid only: budget work units spent by fresh slices *)
}
val time : (unit -> 'a) -> 'a * float
val mb_of : G.app -> float

(** [engine] is a snapshot-loaded search engine (see
    {!Store.Snapshot.load}): analysis skips disassembly-dependent index
    construction and runs warm. *)
val run_backdroid :
  ?cfg:Backdroid.Driver.config ->
  ?engine:Bytesearch.Engine.t ->
  G.app -> measurement * Backdroid.Driver.result
val run_amandroid :
  ?cfg:Baseline.Amandroid.config ->
  timeout_s:float -> G.app -> measurement * Baseline.Amandroid.result
val run_flowdroid_cg :
  ?cfg:Baseline.Flowdroid_cg.config ->
  timeout_s:float -> G.app -> measurement
