(** Declarative detection rules.

    A rule bundles what the hard-coded detection spine used to spread over
    three modules: the sink API signature(s) to search for, the
    argument-of-interest the slicer backtracks (the taint policy), and the
    verdict predicates evaluated over the resolved {e fact} the forward
    analysis produces.  The rule's [name]/[description] double as the report
    schema — every finding is labelled with them.

    The predicate language is deliberately first-order over fact shapes: the
    interpreter lives in [Backdroid.Detectors] (it needs the program for the
    verifier-body checks), this module is pure data so it can sit below the
    core analysis in the dependency order. *)

(** The generic resolved-argument shapes verdict predicates match on —
    mirrors the constructors of [Backdroid.Facts.t]. *)
type shape =
  | Const_str        (** a resolved string constant *)
  | Const_int        (** a resolved integer constant *)
  | New_obj          (** an object allocation with a known class *)
  | Arr              (** an array value *)
  | Static_ref       (** a read of a known static field *)
  | Framework_input  (** data originating outside the app (e.g. a launching
                         Intent of an exported component) *)
  | Symbolic         (** a symbolic/joined value *)
  | Unknown

let shape_to_string = function
  | Const_str -> "const-str"
  | Const_int -> "const-int"
  | New_obj -> "new-obj"
  | Arr -> "arr"
  | Static_ref -> "static-ref"
  | Framework_input -> "framework-input"
  | Symbolic -> "symbolic"
  | Unknown -> "unknown"

let shape_of_string = function
  | "const-str" -> Some Const_str
  | "const-int" -> Some Const_int
  | "new-obj" -> Some New_obj
  | "arr" -> Some Arr
  | "static-ref" -> Some Static_ref
  | "framework-input" -> Some Framework_input
  | "symbolic" -> Some Symbolic
  | "unknown" -> Some Unknown
  | _ -> None

(** Verdict predicates over one resolved fact. *)
type pred =
  | True
  | False
  | Fact_is of shape
  | Str_contains of string   (** fact is a string constant containing [s] *)
  | Str_eq of string
  | Int_eq of int
  | Field_is of { cls : string; name : string }
      (** fact is a static-field reference to exactly this field *)
  | Class_in of string list
      (** fact is an allocation of one of these classes *)
  | Verifier_returns of { name : string; value : int }
      (** fact is an allocation whose method [name] provably returns the
          integer constant [value] (e.g. an allow-all [verify]) *)
  | Verifier_resolves of { name : string }
      (** fact is an allocation whose method [name] returns {e some}
          resolvable integer constant *)
  | All of pred list
  | Any of pred list
  | Not of pred

type t = {
  name : string;
  description : string;
  sinks : Framework.Sinks.t list;
      (** sink signatures sharing this rule; each carries the
          argument-of-interest its slicing pass backtracks *)
  insecure_when : pred;  (** checked first *)
  secure_when : pred;    (** checked if [insecure_when] does not hold *)
}

(* ------------------------------------------------------------------ *)
(* Canonical rendering — the rule-file syntax.  [Parse.rules_of_string]
   reads this format back; the ruleset content hash is computed over it so
   equal rule sets hash equally however they were constructed. *)

let quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let rec pred_to_source = function
  | True -> "true"
  | False -> "false"
  | Fact_is s -> Printf.sprintf "(fact-is %s)" (shape_to_string s)
  | Str_contains s -> Printf.sprintf "(str-contains %s)" (quote s)
  | Str_eq s -> Printf.sprintf "(str-eq %s)" (quote s)
  | Int_eq n -> Printf.sprintf "(int-eq %d)" n
  | Field_is { cls; name } -> Printf.sprintf "(field-is %s %s)" cls name
  | Class_in cs -> Printf.sprintf "(class-in %s)" (String.concat " " cs)
  | Verifier_returns { name; value } ->
    Printf.sprintf "(verifier-returns %s %d)" name value
  | Verifier_resolves { name } -> Printf.sprintf "(verifier-resolves %s)" name
  | All ps ->
    Printf.sprintf "(all %s)" (String.concat " " (List.map pred_to_source ps))
  | Any ps ->
    Printf.sprintf "(any %s)" (String.concat " " (List.map pred_to_source ps))
  | Not p -> Printf.sprintf "(not %s)" (pred_to_source p)

let sink_to_source (s : Framework.Sinks.t) =
  let m = s.Framework.Sinks.msig in
  Printf.sprintf
    "  (sink (class %s) (method %s) (params%s) (return %s) (arg %d) (label %s))"
    m.Ir.Jsig.cls m.Ir.Jsig.name
    (String.concat ""
       (List.map (fun t -> " " ^ Ir.Types.to_string t) m.Ir.Jsig.params))
    (Ir.Types.to_string m.Ir.Jsig.ret)
    s.Framework.Sinks.param_index s.Framework.Sinks.name

let to_source t =
  String.concat "\n"
    ([ "(rule";
       Printf.sprintf "  (name %s)" t.name;
       Printf.sprintf "  (description %s)" (quote t.description) ]
     @ List.map sink_to_source t.sinks
     @ [ Printf.sprintf "  (insecure-when %s)" (pred_to_source t.insecure_when);
         Printf.sprintf "  (secure-when %s))" (pred_to_source t.secure_when) ])

(** Render a whole rule set in the file syntax ([Parse] reads it back). *)
let list_to_source rules =
  String.concat "\n\n" (List.map to_source rules) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Rule-set content hash (FNV-1a 64 over the canonical rendering, folded
   into a nonnegative OCaml int).  Used to stamp search caches and index
   snapshots so artifacts warmed under one rule set are never silently
   reused under another. *)

let hash_list rules =
  let src = list_to_source rules in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
       h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
              0x100000001b3L)
    src;
  Int64.to_int !h land max_int
