tools/sink_sweep_probe.ml: Appgen Backdroid List Printf Unix
