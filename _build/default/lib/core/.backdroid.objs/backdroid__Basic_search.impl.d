lib/core/basic_search.ml: Bytesearch Expr Hashtbl Ir Jclass Jmethod Jsig List Log Option Program Sigformat String Types
