(** A disassembled (and, if multidex, merged) dex file: the flat array of
    plaintext lines that the bytecode search engine scans, each line tagged
    with its enclosing method, plus the compact hit {!Arena} the engine's
    per-category postings index into. *)

type t = {
  lines : Disasm.line array;
  arena : Arena.t;
  program : Ir.Program.t;
}

let of_lines lines program =
  let arena =
    Obs.Span.with_span ~cat:"dex" ~name:"arena"
      ~attrs:[ ("lines", Obs.Span.Int (Array.length lines)) ]
      (fun () -> Arena.of_lines lines)
  in
  { lines; arena; program }

(** A dexfile with no plaintext: the placeholder a warm start installs
    before a snapshot load supplies the real lines and arena, so app
    generation can skip disassembly entirely. *)
let empty p = { lines = [||]; arena = Arena.of_lines [||]; program = p }

let of_program p =
  let lines =
    Obs.Span.with_span ~cat:"dex" ~name:"disasm" (fun () ->
        Array.of_list (Disasm.program_lines p))
  in
  of_lines lines p

(** Emulate multidex: disassemble each classesN.dex partition separately and
    merge the plaintexts, as BackDroid's preprocessing step does. *)
let of_partitions p partitions =
  let part_lines part =
    List.concat_map
      (fun cls_name ->
         match Ir.Program.find_class p cls_name with
         | Some c when not c.Ir.Jclass.is_system -> Disasm.class_lines c
         | Some _ | None -> [])
      part
  in
  of_lines (Array.of_list (List.concat_map part_lines partitions)) p

let line_count t = Array.length t.lines

let to_string t =
  let buf = Buffer.create (64 * Array.length t.lines) in
  Array.iter
    (fun (l : Disasm.line) ->
       Buffer.add_string buf l.text;
       Buffer.add_char buf '\n')
    t.lines;
  Buffer.contents buf
