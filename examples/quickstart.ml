(* Quickstart: hand-build the paper's running example (the LG TV Plus app of
   Figs. 3 and 4) with the IR builder, disassemble it, and watch BackDroid's
   on-the-fly bytecode search walk from the sink back to the entry point.

   The app structure mirrors the paper:
     NetcastTVService.connect()                       <- entry-reachable
       j = new NetcastTVService$1(verifier)           <- Runnable
       Util.runInBackground(j)
         Util.runInBackground(j, true)
           executor.execute(j)                        <- ending method
     NetcastTVService$1.run()
       server = new NetcastHttpServer(verifier)
       server.start(verifier)                         <- private method
     NetcastHttpServer.start(v)
       factory.setHostnameVerifier(v)                 <- the sink API call

   Run with: dune exec examples/quickstart.exe *)

open Ir
module B = Builder
module Api = Framework.Api
module Sinks = Framework.Sinks

let ns = "com.connectsdk.service"
let server_cls = ns ^ ".netcast.NetcastHttpServer"
let runnable_cls = ns ^ ".NetcastTVService$1"
let service_cls = ns ^ ".NetcastTVService"
let util_cls = "com.connectsdk.core.Util"

let verifier_ty = Api.x509_verifier_t

let plain_ctor ~cls ~super =
  B.constructor ~cls (fun mb ->
      B.invoke mb ~base:(B.this mb) ~kind:Expr.Special
        ~callee:(Jsig.meth ~cls:super ~name:"<init>" ~params:[] ~ret:Types.Void)
        ~args:[] ())

(* NetcastHttpServer: the private start() method invokes the sink API *)
let http_server =
  let fld = Jsig.field ~cls:server_cls ~name:"verifier" ~ty:verifier_ty in
  Jclass.make server_cls ~fields:[ fld ]
    ~methods:
      [ B.constructor ~params:[ verifier_ty ] ~cls:server_cls (fun mb ->
            B.invoke mb ~base:(B.this mb) ~kind:Expr.Special
              ~callee:Api.object_init ~args:[] ();
            B.iput mb (B.this mb) fld (Value.Local (B.param mb 0)));
        B.method_ ~access:B.private_access ~cls:server_cls ~name:"start"
          ~params:[] ~ret:Types.Void (fun mb ->
            let v = B.iget mb (B.this mb) fld in
            let factory =
              B.invoke_ret mb ~kind:Expr.Static
                ~callee:
                  (Jsig.meth ~cls:"org.apache.http.conn.ssl.SSLSocketFactory"
                     ~name:"getSocketFactory" ~params:[]
                     ~ret:Api.ssl_socket_factory_t)
                ~args:[] ()
            in
            B.call_virtual mb ~base:factory ~callee:Api.ssl_set_hostname_verifier
              ~args:[ Value.Local v ]) ]

(* NetcastTVService$1: the anonymous Runnable of Fig. 4 *)
let runnable =
  let fld = Jsig.field ~cls:runnable_cls ~name:"verifier" ~ty:verifier_ty in
  Jclass.make ~interfaces:[ "java.lang.Runnable" ] runnable_cls ~fields:[ fld ]
    ~methods:
      [ B.constructor ~params:[ verifier_ty ] ~cls:runnable_cls (fun mb ->
            B.invoke mb ~base:(B.this mb) ~kind:Expr.Special
              ~callee:Api.object_init ~args:[] ();
            B.iput mb (B.this mb) fld (Value.Local (B.param mb 0)));
        B.method_ ~cls:runnable_cls ~name:"run" ~params:[] ~ret:Types.Void
          (fun mb ->
            let v = B.iget mb (B.this mb) fld in
            let server =
              B.new_obj mb server_cls ~ctor_params:[ verifier_ty ]
                ~args:[ Value.Local v ]
            in
            B.invoke mb ~base:server ~kind:Expr.Special
              ~callee:
                (Jsig.meth ~cls:server_cls ~name:"start" ~params:[]
                   ~ret:Types.Void)
              ~args:[] ()) ]

(* Util: the runInBackground chain that ends in Executor.execute *)
let run_bg1 =
  Jsig.meth ~cls:util_cls ~name:"runInBackground" ~params:[ Api.runnable_t ]
    ~ret:Types.Void

let run_bg2 =
  Jsig.meth ~cls:util_cls ~name:"runInBackground"
    ~params:[ Api.runnable_t; Types.Boolean ] ~ret:Types.Void

let util =
  Jclass.make util_cls
    ~methods:
      [ B.method_ ~access:B.static_access ~cls:util_cls ~name:"runInBackground"
          ~params:[ Api.runnable_t ] ~ret:Types.Void (fun mb ->
            B.call_static mb ~callee:run_bg2
              ~args:[ Value.Local (B.param mb 0); Value.Const (Value.Int_c 1) ]);
        B.method_ ~access:B.static_access ~cls:util_cls ~name:"runInBackground"
          ~params:[ Api.runnable_t; Types.Boolean ] ~ret:Types.Void (fun mb ->
            let ex =
              B.invoke_ret mb ~kind:Expr.Static ~callee:Api.executors_new_single
                ~args:[] ()
            in
            B.call_interface mb ~base:ex ~callee:Api.executor_execute
              ~args:[ Value.Local (B.param mb 0) ]) ]

(* NetcastTVService: an Activity whose onCreate calls connect() *)
let service =
  Jclass.make ~super:(Some "android.app.Activity") service_cls
    ~methods:
      [ plain_ctor ~cls:service_cls ~super:"android.app.Activity";
        B.method_ ~cls:service_cls ~name:"onCreate" ~params:[ Api.bundle_t ]
          ~ret:Types.Void (fun mb ->
            B.invoke mb ~base:(B.this mb) ~kind:Expr.Virtual
              ~callee:
                (Jsig.meth ~cls:service_cls ~name:"connect" ~params:[]
                   ~ret:Types.Void)
              ~args:[] ());
        B.method_ ~cls:service_cls ~name:"connect" ~params:[] ~ret:Types.Void
          (fun mb ->
            let v = B.sget mb Api.allow_all_hostname_verifier in
            let j =
              B.new_obj mb runnable_cls ~ctor_params:[ verifier_ty ]
                ~args:[ Value.Local v ]
            in
            B.call_static mb ~callee:run_bg1 ~args:[ Value.Local j ]) ]

let () =
  let program =
    Program.of_classes
      (Framework.Stubs.classes () @ [ http_server; runnable; util; service ])
  in
  let manifest =
    Manifest.App_manifest.make ~package:"com.lge.app1"
      ~components:
        [ Manifest.Component.make ~kind:Manifest.Component.Activity service_cls ]
  in
  let dex = Dex.Dexfile.of_program program in
  Printf.printf "== disassembled app: %d dexdump lines ==\n\n"
    (Dex.Dexfile.line_count dex);

  (* show the two signature translations of Fig. 3 *)
  let start_sig =
    Jsig.meth ~cls:server_cls ~name:"start" ~params:[] ~ret:Types.Void
  in
  Printf.printf "Soot format   : %s\n" (Jsig.meth_to_string start_sig);
  Printf.printf "dexdump format: %s\n\n" (Backdroid.Sigformat.to_dex_meth start_sig);

  (* run the full pipeline *)
  let r = Backdroid.Driver.analyze ~dex ~manifest () in
  List.iter
    (fun (rep : Backdroid.Driver.sink_report) ->
       Printf.printf "sink %s at %s:%d\n"
         rep.sink.Sinks.name
         (Jsig.meth_to_string rep.meth) rep.site;
       Printf.printf "  reachable : %b\n" rep.reachable;
       Printf.printf "  dataflow  : %s\n" (Backdroid.Facts.to_string rep.fact);
       Printf.printf "  verdict   : %s\n\n"
         (Backdroid.Detectors.verdict_to_string rep.verdict);
       match rep.ssg with
       | Some ssg -> Fmt.pr "%a@." Backdroid.Ssg.pp ssg
       | None -> ())
    r.Backdroid.Driver.reports;
  let s = r.Backdroid.Driver.stats in
  Printf.printf "searches: %d (%.0f%% cached)\n" s.Backdroid.Driver.searches_total
    (100.0 *. s.Backdroid.Driver.search_cache_rate);
  Printf.printf "index: %d/7 postings categories built (lazy mode)\n"
    s.Backdroid.Driver.index_categories_built
