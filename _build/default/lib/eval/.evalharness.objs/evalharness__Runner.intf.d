lib/eval/runner.mli: Appgen Backdroid Baseline
