(** Persisted per-sink analysis results with content-hash invalidation.

    One {!entry} caches one sink call site's backtracking + forward
    propagation outcome — reachability and the propagated sink-argument
    {!Facts.t} — stamped with its {e footprint}: the app classes the SSG
    slice touched.  Verdicts are not cached; they are recomputed per rule
    from the cached fact ({!Detectors.classify_rule} is pure), so replay
    is safe across rule-set changes.

    The cache records the app-wide class-hash table current when it was
    produced.  {!plan} diffs it against a new build's
    {!Dex.Classmap}; {!lookup} then serves an entry only when every
    footprint class is unchanged {e and} unreferenced by any changed or
    added class — the condition under which the slice provably reproduces
    (any caller/writer the backward search would find was visited and is
    in the footprint).  [Partial]-outcome slices are never cached (budget
    exhaustion may be wall-clock dependent).

    Serializes to an opaque [string array], stored in snapshot files via
    {!Store.Snapshot.save}'s [results] argument (the store does not
    interpret the strings; this module owns the format). *)

type entry = {
  e_sink_msig : string;   (** [Jsig.meth_to_string] of the sink signature *)
  e_param_index : int;
  e_meth : string;        (** containing method, [Jsig.meth_to_string] *)
  e_site : int;
  e_reachable : bool;
  e_fact : Facts.t;
  e_footprint : string list;  (** app classes the SSG slice touched *)
}

type t

val empty : t

(** [build ~classes entries] — [classes] is the app's (class name, IR hash)
    table at production time; entries failing the round-trip cacheability
    check are dropped at serialization time, not here. *)
val build : classes:(string * int64) array -> entry list -> t

val entries : t -> entry list
val length : t -> int

(** Serialize; entry 0 is the class-hash header.  Entries whose fact does
    not round-trip byte-identically (or contains a points-to cycle) are
    silently dropped — replay must be a pure function of the persisted
    bytes. *)
val to_strings : t -> string array

(** Parse; [Error] on any malformed record (callers treat it as an absent
    cache).  [of_strings [||]] is {!empty}. *)
val of_strings : string array -> (t, string) result

(** A replay plan: the cache diffed against one new build. *)
type plan

(** Diff [t]'s class-hash table against [dex]'s classmap and precompute,
    for every cached footprint class, whether it is replay-safe (unchanged
    and unreferenced by any changed/added class's operands).  With an
    empty classmap (no delta provenance) nothing is replayable. *)
val plan : t -> dex:Dex.Dexfile.t -> plan

(** The cached entry for this sink call site, iff its whole footprint is
    replay-safe. *)
val lookup :
  plan ->
  sink_msig:string ->
  param_index:int ->
  meth:string ->
  site:int ->
  entry option
