(** Forward constant and points-to propagation over the SSG (Sec. V-B).

    The traversal starts with the SSG's static track (off-path <clinit>
    methods populate the global static fact map), then interprets the main
    track from each entry method, descending into invoked app methods and
    following the SSG's asynchronous / ICC / lifecycle continuation edges,
    until the sink statement is executed and the fact of its tracked
    parameter is captured. *)

type config = {
  max_depth : int;   (** interpretation (inlining) depth *)
  max_steps : int;   (** total statement budget per SSG *)
}

val default_config : config

(** Run the forward analysis over one SSG.  Returns the dataflow fact of the
    sink's tracked parameter (Unknown when the traversal cannot resolve
    it). *)
val run : ?cfg:config -> Ir.Program.t -> Ssg.t -> Facts.t
