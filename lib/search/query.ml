(** Typed bytecode-search commands.  Each constructor corresponds to one kind
    of raw text search BackDroid issues against the dexdump plaintext.

    Payloads are interned symbols: constructing a query interns its search
    signature once, after which cache lookups, postings lookups and
    query equality are integer operations — no command string is rendered
    on the hot path (the query value itself is the cache key).  Use the
    smart constructors below; {!to_command} renders the human-readable
    grep-style command for tracing only. *)

type t =
  | Invocation of Sym.t
      (** dexdump method signature; matches [invoke-*] lines *)
  | New_instance of Sym.t  (** dexdump class descriptor *)
  | Const_class of Sym.t   (** dexdump class descriptor on [const-class] *)
  | Const_string of Sym.t  (** the {e quoted} string literal *)
  | Field_access of Sym.t  (** dexdump field signature; iget/iput/sget/sput *)
  | Static_field_access of Sym.t  (** sget/sput only *)
  | Class_use of Sym.t
      (** class descriptor anywhere in instruction lines of other classes *)
  | Raw of string          (** free-form substring *)

(* Smart constructors from the raw search strings. *)
let invocation s = Invocation (Sym.intern s)
let new_instance s = New_instance (Sym.intern s)
let const_class s = Const_class (Sym.intern s)

(** [const_string s] takes the {e unquoted} literal and interns its quoted
    rendering — the exact operand text of a [const-string] line. *)
let const_string s = Const_string (Sym.intern (Printf.sprintf "%S" s))

let field_access s = Field_access (Sym.intern s)
let static_field_access s = Static_field_access (Sym.intern s)
let class_use s = Class_use (Sym.intern s)
let raw s = Raw s

(* Smart constructors from already-interned symbols (descriptor memos). *)
let invocation_sym s = Invocation s
let new_instance_sym s = New_instance s
let const_class_sym s = Const_class s
let field_access_sym s = Field_access s
let static_field_access_sym s = Static_field_access s
let class_use_sym s = Class_use s

let equal (a : t) (b : t) =
  match a, b with
  | Invocation x, Invocation y
  | New_instance x, New_instance y
  | Const_class x, Const_class y
  | Const_string x, Const_string y
  | Field_access x, Field_access y
  | Static_field_access x, Static_field_access y
  | Class_use x, Class_use y -> Sym.equal x y
  | Raw x, Raw y -> String.equal x y
  | _ -> false

let hash (q : t) = Hashtbl.hash q

(** Granularity label used for the per-category cache statistics of
    Sec. IV-F. *)
type category =
  | Cat_caller      (** caller-method (invocation) searches *)
  | Cat_class       (** invoked-class searches *)
  | Cat_field       (** static / instance field searches *)
  | Cat_raw         (** everything else *)

let category = function
  | Invocation _ | New_instance _ -> Cat_caller
  | Const_class _ | Class_use _ -> Cat_class
  | Field_access _ | Static_field_access _ -> Cat_field
  | Const_string _ | Raw _ -> Cat_raw

let category_to_string = function
  | Cat_caller -> "caller"
  | Cat_class -> "class"
  | Cat_field -> "field"
  | Cat_raw -> "raw"

(** Dense index of a category, for per-category counter arrays. *)
let category_index = function
  | Cat_caller -> 0
  | Cat_class -> 1
  | Cat_field -> 2
  | Cat_raw -> 3

let n_categories = 4

(** All categories, in {!category_index} order. *)
let all_categories = [| Cat_caller; Cat_class; Cat_field; Cat_raw |]

(** Raw command string, e.g. ["grep 'invoke-.*, Lcom/foo;.m:()V'"] — for
    trace output only; not a cache key and never rendered on the hot path. *)
let to_command = function
  | Invocation s -> Printf.sprintf "grep 'invoke-.*, %s'" (Sym.to_string s)
  | New_instance s ->
    Printf.sprintf "grep 'new-instance .*, %s'" (Sym.to_string s)
  | Const_class s ->
    Printf.sprintf "grep 'const-class .*, %s'" (Sym.to_string s)
  | Const_string s ->
    Printf.sprintf "grep 'const-string .*, %s'" (Sym.to_string s)
  | Field_access s ->
    Printf.sprintf "grep '[is]\\(get\\|put\\)-.*, %s'" (Sym.to_string s)
  | Static_field_access s ->
    Printf.sprintf "grep 's\\(get\\|put\\)-.*, %s'" (Sym.to_string s)
  | Class_use s -> Printf.sprintf "grep '%s'" (Sym.to_string s)
  | Raw s -> Printf.sprintf "grep '%s'" s
