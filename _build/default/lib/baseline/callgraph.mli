(** Whole-app call-graph construction — the phase every existing tool needs
    before any inter-procedural analysis (Sec. II-A).  Built from all entry
    points with CHA dispatch, domain-knowledge callback/async edges, implicit
    [<clinit>] edges and ICC edges.  The [config] flags encode the documented
    behaviours (and gaps) of the Amandroid baseline. *)

module Api = Framework.Api
exception Timeout
type config = {
  skip_packages : string list;
  connect_thread : bool;
  connect_executor : bool;
  connect_asynctask : bool;
  connect_onclick : bool;
  icc : bool;
  unregistered_components_are_entries : bool;
  deadline : float option;
}

(** Amandroid-like defaults: liblist skipping on, the async/callback gaps the
    paper documents (Executor / AsyncTask / onClick missing), unregistered
    components treated as entries. *)
val amandroid_config : config

(** A robust configuration without the documented gaps (for ablations). *)
val robust_config : config
type t = {
  entries : Ir.Jsig.meth list;
  reachable : (string, unit) Hashtbl.t;
  mutable edge_count : int;
  mutable method_count : int;
}
val check_deadline : config -> unit
val skipped : config -> string -> bool

(** Entry points: manifest-registered lifecycle handlers, plus (when the
    imprecise flag is set) handlers of every framework-component subclass. *)
val entry_points :
  config -> Ir.Program.t -> Manifest.App_manifest.t -> Ir.Jsig.meth list

(** The static receiver/argument class at an async registration site, used
    for the domain-knowledge edges. *)
val local_class : Ir.Value.local -> string option

(** Domain-knowledge callback/async targets for one invocation. *)
val async_targets :
  config -> Ir.Program.t -> Ir.Expr.invoke -> Ir.Jsig.meth list

(** ICC targets: resolve the Intent built in the same body (explicit
    [const-class] target or implicit action string) to the lifecycle handlers
    of matching registered components. *)
val icc_targets :
  config ->
  Ir.Program.t ->
  Manifest.App_manifest.t ->
  Ir.Stmt.t array -> Ir.Expr.invoke -> Ir.Jsig.meth list

(** Build the whole-app call graph: worklist from all entry points. *)
val build : ?cfg:config -> Ir.Program.t -> Manifest.App_manifest.t -> t
val is_reachable : t -> Ir.Jsig.meth -> bool
