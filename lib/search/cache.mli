(** Search-command caching (implementation enhancement 1, Sec. IV-F).

    Keys are the typed queries themselves — symbol payloads make query
    hashing and equality integer operations, so a cache probe renders no
    command string.  The cache also keeps the per-category and aggregate
    counters the paper reports (average cache rate 23.39%, min 2.97%, max
    88.95%).

    The cache is safe under concurrent use from multiple domains: lookups,
    inserts and counter updates are serialized by an internal mutex, and
    {!find_or_add} holds the lock across the compute of a miss, so each
    distinct key is computed exactly once and the hit/miss totals are
    independent of scheduling.  The compute function must therefore not
    re-enter the cache. *)

type 'hit t

val create : unit -> 'a t

(** Look up or compute the result of [query], recording statistics.
    Atomic: a key's first lookup computes, every other lookup (from any
    domain) is a cache hit. *)
val find_or_add : 'a t -> Query.t -> (unit -> 'a list) -> 'a list

(** Drop every cached result; the statistics counters are kept (they
    describe work actually performed).  Used when the rule set driving the
    searches changes under a reused engine. *)
val flush : 'a t -> unit

(** Fraction of search commands served from cache, in [0, 1]. *)
val cache_rate : 'a t -> float

val total_searches : 'a t -> int
val cached_searches : 'a t -> int
val category_stats : 'a t -> (Query.category * int * int) list

(** Per-category accumulated compute cost: µs spent computing this
    category's cache misses (hits cost nothing). *)
val category_timings : 'a t -> (Query.category * float) list

(** Cumulative queries issued by the {e calling domain}, across every cache
    instance it touched.  A slice runs entirely on one domain, so deltas of
    these counters around it are scheduling-independent — except
    [lc_cached]: which slice pays the one miss per distinct key depends on
    scheduling, so cached counts are informational only. *)
type local_counts = {
  lc_total : int;
  lc_cached : int;
  lc_by_cat : int array;   (** per {!Query.category_index} *)
}

val local_counts : unit -> local_counts
