lib/core/perapp_ssg.ml: Fmt Framework Hashtbl Ir Jsig List Printf Ssg
