(** A CryptoGuard-style comparator (Sec. VIII related work): crypto-specific
    slicing on top of *intra*-procedural dataflow only.  For every sink API
    call it resolves the security-relevant parameter using nothing but the
    containing method's body — the precision/runtime trade-off the paper
    attributes to CryptoGuard.

    Characteristic behaviour demonstrated by the test suite:
    - parameters passed in from callers are unresolvable (false negatives on
      every inter-procedural flow, which is most of them);
    - entry-point reachability is never checked, so sinks in dead code or
      unregistered components are reported anyway (false positives);
    - it is extremely fast, since no inter-procedural work happens at all. *)

open Ir
module Facts = Backdroid.Facts
module Api_model = Backdroid.Api_model
module Detectors = Backdroid.Detectors
module Sinks = Framework.Sinks

type finding = {
  sink : Sinks.t;
  meth : Jsig.meth;
  site : int;
  fact : Facts.t;
  verdict : Detectors.verdict;
}

let lookup env id = Option.value ~default:Facts.Unknown (Hashtbl.find_opt env id)

let value_fact env = function
  | Value.Local l -> lookup env l.Value.id
  | Value.Const (Value.Str_c s) -> Facts.Const_str s
  | Value.Const (Value.Int_c i) -> Facts.Const_int i
  | Value.Const (Value.Long_c i) -> Facts.Const_int (Int64.to_int i)
  | Value.Const (Value.Class_c c) -> Facts.Const_str c
  | Value.Const (Value.Null | Value.Float_c _ | Value.Double_c _) ->
    Facts.Unknown

(** One linear pass over a single body: constants, arithmetic, points-to and
    the modelled APIs — but no calls are entered and parameters are opaque.
    [sinks] is a prebuilt {!Sinks.index}: the probe below runs once per
    invocation in the app, so it must be the O(1) hashtable lookup, not a
    linear scan of the sink list. *)
let eval_body_local program sinks (meth : Jsig.meth) body =
  let env : (string, Facts.t) Hashtbl.t = Hashtbl.create 16 in
  let findings = ref [] in
  Array.iteri
    (fun site stmt ->
       (* sink check first, so the arguments are pre-assignment facts *)
       (match Stmt.invoke stmt with
        | Some iv ->
          (match Sinks.find sinks iv.Expr.callee with
           | Some sink ->
             let fact =
               Option.value ~default:Facts.Unknown
                 (Option.map (value_fact env)
                    (List.nth_opt iv.Expr.args sink.Sinks.param_index))
             in
             let verdict = Detectors.classify program sink fact in
             findings := { sink; meth; site; fact; verdict } :: !findings
           | None -> ())
        | None -> ());
       match stmt with
       | Stmt.Assign (l, e) ->
         let fact =
           match e with
           | Expr.Imm v -> value_fact env v
           | Expr.Binop (op, a, b) ->
             Api_model.binop op (value_fact env a) (value_fact env b)
           | Expr.Cast (_, v) -> value_fact env v
           | Expr.New c -> Facts.new_obj c
           | Expr.New_array (t, _) -> Facts.new_arr t
           | Expr.Instance_get (o, f) ->
             (match lookup env o.Value.id with
              | Facts.New_obj obj ->
                Option.value ~default:Facts.Unknown
                  (Hashtbl.find_opt obj.members (Jsig.field_to_string f))
              | _ -> Facts.Unknown)
           | Expr.Phi ls ->
             List.fold_left
               (fun acc x -> Facts.join acc (lookup env x.Value.id))
               Facts.Unknown ls
           | Expr.Invoke iv ->
             (* API models only; app calls are not entered *)
             let recv = Option.map (fun b -> lookup env b.Value.id) iv.base in
             let args = List.map (value_fact env) iv.args in
             Option.value ~default:Facts.Unknown (Api_model.eval iv.callee recv args)
           | Expr.Static_get f -> Facts.Static_ref f
           | Expr.Param _ | Expr.This | Expr.Caught_exception
           | Expr.Array_get _ | Expr.Length _ -> Facts.Unknown
         in
         Hashtbl.replace env l.Value.id fact
       | Stmt.Instance_put (o, f, v) ->
         (match lookup env o.Value.id with
          | Facts.New_obj obj ->
            Hashtbl.replace obj.members (Jsig.field_to_string f) (value_fact env v)
          | _ -> ())
       | Stmt.Invoke _ | Stmt.Static_put _ | Stmt.Array_put _ | Stmt.Return _
       | Stmt.If _ | Stmt.Goto _ | Stmt.Throw _ | Stmt.Nop -> ())
    body;
  List.rev !findings

(** Scan every app method once; no reachability, no inter-procedural flow. *)
let analyze ?(sinks = Sinks.primary) (program : Program.t) =
  let sinks = Sinks.index sinks in
  Program.fold_classes program
    (fun c acc ->
       if c.Jclass.is_system then acc
       else
         List.fold_left
           (fun acc (m : Jmethod.t) ->
              match m.Jmethod.body with
              | None -> acc
              | Some body ->
                eval_body_local program sinks m.Jmethod.msig body @ acc)
           acc c.Jclass.methods)
    []

let insecure_findings findings =
  List.filter (fun f -> f.verdict = Detectors.Insecure) findings
