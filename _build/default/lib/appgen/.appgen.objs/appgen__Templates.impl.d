lib/appgen/templates.ml: Builder Expr Framework Ir Jclass Jmethod Jsig List Manifest Option Printf Rng Shape String Types Value
