(** The bytecode search engine: executes typed queries as substring scans
    over the dexdump plaintext, returning hits mapped back to their enclosing
    methods, with command-level caching. *)

type hit = {
  line_no : int;
  text : string;
  owner : Ir.Jsig.meth;     (** enclosing method of the matching line *)
  owner_cls : string;
  stmt_idx : int option;
}

(** Inverted indexes over the dexdump plaintext, built in one preprocessing
    pass (the moral equivalent of `grep` building its own cache).  The
    un-indexed mode scans every line per query, like shelling out to grep —
    kept for the search-cost ablation benchmark.

    Buckets are finalized to ascending line order once at construction time,
    so lookups are allocation-free table reads.  Construction can be sharded
    over a {!Parallel.Pool.t}: each domain indexes a contiguous slice of the
    plaintext into domain-local tables, and the ordered merge reproduces the
    sequential bucket contents exactly. *)
type index = {
  invocations : (string, hit list) Hashtbl.t;   (** dex sig -> invoke lines *)
  new_instances : (string, hit list) Hashtbl.t; (** class desc -> lines *)
  const_classes : (string, hit list) Hashtbl.t;
  const_strings : (string, hit list) Hashtbl.t; (** quoted literal -> lines *)
  field_ops : (string, hit list) Hashtbl.t;     (** field sig -> iget/iput/... *)
  static_field_ops : (string, hit list) Hashtbl.t;
  class_tokens : (string, hit list) Hashtbl.t;  (** class desc -> any line *)
}

type t = {
  dex : Dex.Dexfile.t;
  cache : hit Cache.t;
  index : index option;
}

let push tbl key hit =
  let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (hit :: prev)

(* the instruction text starts after "    %04x: " *)
let opcode_rest text =
  match String.index_opt text ':' with
  | Some colon when colon + 2 <= String.length text ->
    Some (String.sub text (colon + 2) (String.length text - colon - 2))
  | Some _ | None -> None

let last_operand rest =
  (* operand after the last ", " *)
  let rec find i best =
    if i + 1 >= String.length rest then best
    else if rest.[i] = ',' && rest.[i + 1] = ' ' then find (i + 1) (Some (i + 2))
    else find (i + 1) best
  in
  match find 0 None with
  | Some start -> Some (String.sub rest start (String.length rest - start))
  | None -> None

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(** Class-descriptor tokens ([Lcom/foo/Bar;]) occurring in a line. *)
let class_tokens_of text =
  let n = String.length text in
  let ok c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '/' || c = '_' || c = '$'
  in
  let rec go i acc =
    if i >= n then acc
    else if text.[i] = 'L' && (i = 0 || not (ok text.[i - 1])) then begin
      let rec scan j = if j < n && ok text.[j] then scan (j + 1) else j in
      let j = scan (i + 1) in
      if j < n && text.[j] = ';' && j > i + 1 then
        go (j + 1) (String.sub text i (j - i + 1) :: acc)
      else go (i + 1) acc
    end
    else go (i + 1) acc
  in
  List.sort_uniq String.compare (go 0 [])

let empty_index () =
  { invocations = Hashtbl.create 1024;
    new_instances = Hashtbl.create 256;
    const_classes = Hashtbl.create 64;
    const_strings = Hashtbl.create 256;
    field_ops = Hashtbl.create 256;
    static_field_ops = Hashtbl.create 128;
    class_tokens = Hashtbl.create 1024 }

(* Index lines[lo, hi).  Buckets come out in descending line order (prepend);
   finalization or the sharded merge restores ascending order. *)
let index_range (dex : Dex.Dexfile.t) ~lo ~hi =
  let idx = empty_index () in
  let lines = dex.Dex.Dexfile.lines in
  for line_no = lo to hi - 1 do
    let line : Dex.Disasm.line = lines.(line_no) in
    match line.owner with
    | None -> ()
    | Some owner ->
      let hit =
        { line_no; text = line.text; owner;
          owner_cls = Option.value ~default:"" line.owner_cls;
          stmt_idx = line.stmt_idx }
      in
      (match opcode_rest line.text with
       | None -> ()
       | Some rest ->
         (match last_operand rest with
          | Some operand ->
            if starts_with ~prefix:"invoke-" rest then
              push idx.invocations operand hit
            else if starts_with ~prefix:"new-instance" rest then
              push idx.new_instances operand hit
            else if starts_with ~prefix:"const-class" rest then
              push idx.const_classes operand hit
            else if starts_with ~prefix:"const-string" rest then
              push idx.const_strings operand hit
            else if starts_with ~prefix:"iget" rest
                    || starts_with ~prefix:"iput" rest then
              push idx.field_ops operand hit
            else if starts_with ~prefix:"sget" rest
                    || starts_with ~prefix:"sput" rest then begin
              push idx.field_ops operand hit;
              push idx.static_field_ops operand hit
            end
          | None -> ());
         List.iter
           (fun tok -> push idx.class_tokens tok hit)
           (class_tokens_of rest))
  done;
  idx

let index_tables idx =
  [ idx.invocations; idx.new_instances; idx.const_classes; idx.const_strings;
    idx.field_ops; idx.static_field_ops; idx.class_tokens ]

(* Reverse every bucket once so lookups are allocation-free table reads. *)
let finalize_index idx =
  List.iter
    (fun tbl -> Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) tbl)
    (index_tables idx);
  idx

(* Append [src]'s buckets (descending within the shard) to [dst]'s finalized
   (ascending) buckets.  Shards are merged in slice order, so concatenation
   reproduces the single-pass ascending bucket contents byte for byte. *)
let merge_shard_into dst src =
  List.iter2
    (fun dtbl stbl ->
       Hashtbl.iter
         (fun key bucket ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt dtbl key) in
            Hashtbl.replace dtbl key (prev @ List.rev bucket))
         stbl)
    (index_tables dst) (index_tables src)

(* Shards below this size are not worth the merge traffic. *)
let min_shard_lines = 2048

let build_index ?pool (dex : Dex.Dexfile.t) =
  let n = Array.length dex.Dex.Dexfile.lines in
  match pool with
  | Some pool
    when Parallel.Pool.jobs pool > 1 && n >= 2 * min_shard_lines ->
    let chunks =
      min (Parallel.Pool.jobs pool) (max 1 (n / min_shard_lines))
    in
    let shards =
      Parallel.Pool.parallel_ranges pool ~chunks ~n (fun ~lo ~hi ->
          index_range dex ~lo ~hi)
    in
    let idx = empty_index () in
    List.iter (merge_shard_into idx) shards;
    idx
  | Some _ | None -> finalize_index (index_range dex ~lo:0 ~hi:n)

let create ?(indexed = true) ?pool dex =
  { dex; cache = Cache.create ();
    index = (if indexed then Some (build_index ?pool dex) else None) }

let program t = t.dex.Dex.Dexfile.program

(* Naive-but-tight substring check; patterns are short and lines are short,
   so this outperforms building a full-text index for our corpus sizes.  The
   candidate comparison is a char loop — no String.sub allocation in the
   scan hot path. *)
let contains ~pat s =
  let lp = String.length pat and ls = String.length s in
  if lp = 0 then true
  else if lp > ls then false
  else begin
    let max_start = ls - lp in
    let c0 = pat.[0] in
    let rec eq_at i j =
      j >= lp
      || (String.unsafe_get s (i + j) = String.unsafe_get pat j
          && eq_at i (j + 1))
    in
    let rec at i =
      if i > max_start then false
      else if s.[i] = c0 && eq_at i 1 then true
      else at (i + 1)
    in
    at 0
  end

let starts_with_opcode ~prefixes text =
  (* instruction lines look like "    0004: invoke-virtual {...}, ..." *)
  match String.index_opt text ':' with
  | None -> false
  | Some colon ->
    let rest_start = colon + 2 in
    List.exists
      (fun p ->
         rest_start + String.length p <= String.length text
         && String.sub text rest_start (String.length p) = p)
      prefixes

let scan t ~prefixes ~pat ~filter =
  let acc = ref [] in
  Array.iteri
    (fun i (line : Dex.Disasm.line) ->
       match line.owner with
       | None -> ()
       | Some owner ->
         if (prefixes = [] || starts_with_opcode ~prefixes line.text)
            && contains ~pat line.text
         then begin
           let h =
             { line_no = i; text = line.text; owner;
               owner_cls = Option.value ~default:"" line.owner_cls;
               stmt_idx = line.stmt_idx }
           in
           if filter h then acc := h :: !acc
         end)
    t.dex.Dex.Dexfile.lines;
  List.rev !acc

(* Buckets were finalized to ascending line order at build time, so a lookup
   is a single allocation-free table read. *)
let indexed_lookup idx (q : Query.t) =
  let get tbl key = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  match q with
  | Query.Invocation sig_ -> Some (get idx.invocations sig_)
  | Query.New_instance cls -> Some (get idx.new_instances cls)
  | Query.Const_class cls -> Some (get idx.const_classes cls)
  | Query.Const_string s -> Some (get idx.const_strings (Printf.sprintf "%S" s))
  | Query.Field_access fld -> Some (get idx.field_ops fld)
  | Query.Static_field_access fld -> Some (get idx.static_field_ops fld)
  | Query.Class_use cls ->
    let subject = Dex.Descriptor.class_of_desc cls in
    Some
      (List.filter
         (fun h -> not (String.equal h.owner_cls subject))
         (get idx.class_tokens cls))
  | Query.Raw _ -> None  (* free-form searches always scan *)

let scan_uncached t (q : Query.t) =
  match q with
  | Invocation sig_ ->
    scan t ~prefixes:[ "invoke-" ] ~pat:(", " ^ sig_) ~filter:(fun _ -> true)
  | New_instance cls ->
    scan t ~prefixes:[ "new-instance" ] ~pat:(", " ^ cls) ~filter:(fun _ -> true)
  | Const_class cls ->
    scan t ~prefixes:[ "const-class" ] ~pat:(", " ^ cls) ~filter:(fun _ -> true)
  | Const_string s ->
    scan t ~prefixes:[ "const-string" ] ~pat:(Printf.sprintf "%S" s)
      ~filter:(fun _ -> true)
  | Field_access fld ->
    scan t ~prefixes:[ "iget"; "iput"; "sget"; "sput" ] ~pat:(", " ^ fld)
      ~filter:(fun _ -> true)
  | Static_field_access fld ->
    scan t ~prefixes:[ "sget"; "sput" ] ~pat:(", " ^ fld)
      ~filter:(fun _ -> true)
  | Class_use cls ->
    let subject = Dex.Descriptor.class_of_desc cls in
    scan t ~prefixes:[] ~pat:cls
      ~filter:(fun h -> not (String.equal h.owner_cls subject))
  | Raw pat -> scan t ~prefixes:[] ~pat ~filter:(fun _ -> true)

let run_uncached t q =
  match t.index with
  | Some idx ->
    (match indexed_lookup idx q with
     | Some hits -> hits
     | None -> scan_uncached t q)
  | None -> scan_uncached t q

(** Execute a query, consulting the command cache first. *)
let run t q = Cache.find_or_add t.cache q (fun () -> run_uncached t q)

let cache_rate t = Cache.cache_rate t.cache
let total_searches t = Cache.total_searches t.cache
let cached_searches t = Cache.cached_searches t.cache
let category_stats t = Cache.category_stats t.cache
let category_timings t = Cache.category_timings t.cache
