test/test_core_units.ml: Alcotest Backdroid Builder Bytesearch Dex Expr Framework Ir Jclass Jmethod Jsig List Manifest Program String Types Value
