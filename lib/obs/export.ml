(** OpenMetrics/Prometheus text exposition of a {!Metrics} snapshot, so a
    resident analysis service can be scraped without a JSON shim.

    Counters render as OpenMetrics [counter] families (one [_total] sample);
    histograms render as [summary] families — p50/p90/p99 [quantile] samples
    (via {!Metrics.quantile}) plus [_sum]/[_count] — because the registry's
    log2 buckets are not the cumulative [le] buckets Prometheus histograms
    require, and quantiles are what the dashboards want anyway.  Dots and
    other characters outside the exposition charset are folded to ['_'] and
    every family gets a [backdroid_] prefix.

    {!validate} is a strict checker for the exposition grammar subset this
    module emits (promtool-style), used by the CI format gate and the unit
    tests — it rejects interleaved families, samples before their [# TYPE],
    bad metric names, unparseable values, and a missing [# EOF]. *)

(* -- Name handling ---------------------------------------------------- *)

let name_char_ok ~first c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || ((not first) && c >= '0' && c <= '9')

let name_ok s =
  s <> ""
  && name_char_ok ~first:true s.[0]
  && String.for_all (name_char_ok ~first:false) s

(** Fold a registry name ("search.cache.hits") into the exposition charset
    and prefix it ("backdroid_search_cache_hits"). *)
let sanitize ?(prefix = "backdroid_") name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
       if not (name_char_ok ~first:false c) then Bytes.set b i '_')
    b;
  prefix ^ Bytes.to_string b

(* -- Rendering --------------------------------------------------------- *)

let quantiles = [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99) ]

let number v =
  (* OpenMetrics wants a plain decimal; one decimal matches the µs-scale
     resolution of everything the registry holds *)
  Jsonf.number ~dec:1 v

let openmetrics ?prefix (snap : Metrics.snapshot) =
  let b = Buffer.create 2048 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  List.iter
    (fun (name, v) ->
       let n = sanitize ?prefix name in
       bpf "# TYPE %s counter\n" n;
       bpf "%s_total %d\n" n v)
    snap.Metrics.counters;
  List.iter
    (fun (name, h) ->
       let n = sanitize ?prefix name in
       bpf "# TYPE %s summary\n" n;
       List.iter
         (fun (label, q) ->
            bpf "%s{quantile=\"%s\"} %s\n" n label
              (number (Metrics.quantile h q)))
         quantiles;
       bpf "%s_sum %s\n" n (number h.Metrics.h_sum);
       bpf "%s_count %d\n" n h.Metrics.h_count)
    snap.Metrics.histograms;
  bpf "# EOF\n";
  Buffer.contents b

(* -- Validation -------------------------------------------------------- *)

type family = { f_name : string; f_kind : string }

let split_sample line =
  (* "<name>[{labels}] <value>" -> (name, labels option, value string) *)
  let n = String.length line in
  let rec name_end i =
    if i < n && name_char_ok ~first:false line.[i] then name_end (i + 1)
    else i
  in
  let ne = name_end 0 in
  if ne = 0 then Error "sample line does not start with a metric name"
  else begin
    let name = String.sub line 0 ne in
    if ne < n && line.[ne] = '{' then begin
      match String.index_from_opt line ne '}' with
      | None -> Error "unterminated label set"
      | Some ce ->
        if ce + 1 >= n || line.[ce + 1] <> ' ' then
          Error "missing value after label set"
        else
          Ok (name, Some (String.sub line (ne + 1) (ce - ne - 1)),
              String.sub line (ce + 2) (n - ce - 2))
    end
    else if ne < n && line.[ne] = ' ' then
      Ok (name, None, String.sub line (ne + 1) (n - ne - 1))
    else Error "missing value"
  end

let strip_suffix ~suffix s =
  let ls = String.length suffix and ln = String.length s in
  if ln > ls && String.sub s (ln - ls) ls = suffix then
    Some (String.sub s 0 (ln - ls))
  else None

(** Strictly check [text] against the exposition grammar subset emitted by
    {!openmetrics}. *)
let validate text =
  let err lineno fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m))
      fmt
  in
  let lines = String.split_on_char '\n' text in
  (* a single trailing "" is the final newline, not an empty line *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec go lineno current eof = function
    | [] -> if eof then Ok () else Error "missing # EOF terminator"
    | line :: rest ->
      if eof then err lineno "content after # EOF"
      else if line = "# EOF" then go (lineno + 1) current true rest
      else if line = "" then err lineno "empty line"
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] ->
          if not (name_ok name) then err lineno "bad metric name %S" name
          else if Hashtbl.mem seen name then
            err lineno "family %S interleaved or repeated" name
          else if not (List.mem kind [ "counter"; "summary"; "gauge"; "histogram" ])
          then err lineno "unknown metric type %S" kind
          else begin
            Hashtbl.replace seen name ();
            go (lineno + 1) (Some { f_name = name; f_kind = kind }) eof rest
          end
        | _ -> err lineno "malformed # TYPE line"
      end
      else if line.[0] = '#' then err lineno "unexpected comment %S" line
      else begin
        match split_sample line with
        | Error m -> err lineno "%s" m
        | Ok (name, labels, value) ->
          if not (name_ok name) then err lineno "bad sample name %S" name
          else if float_of_string_opt value = None then
            err lineno "unparseable value %S for %S" value name
          else begin
            match current with
            | None -> err lineno "sample %S before any # TYPE" name
            | Some fam ->
              let belongs =
                match fam.f_kind with
                | "counter" ->
                  labels = None && name = fam.f_name ^ "_total"
                | "summary" ->
                  (name = fam.f_name
                   && (match labels with
                       | Some l ->
                         String.length l > 10
                         && String.sub l 0 10 = "quantile=\""
                       | None -> false))
                  || (labels = None
                      && (name = fam.f_name ^ "_sum"
                          || name = fam.f_name ^ "_count"))
                | _ ->
                  (* gauge/histogram accepted by name prefix only *)
                  name = fam.f_name
                  || strip_suffix ~suffix:"_sum" name = Some fam.f_name
                  || strip_suffix ~suffix:"_count" name = Some fam.f_name
                  || strip_suffix ~suffix:"_bucket" name = Some fam.f_name
              in
              if belongs then go (lineno + 1) current eof rest
              else
                err lineno "sample %S does not belong to %s family %S" name
                  fam.f_kind fam.f_name
          end
      end
  in
  go 1 None false lines
