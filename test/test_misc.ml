(* Miscellaneous coverage: pretty-printer output, CHA dispatch on interface
   hierarchies, builder control flow, and a couple of cross-cutting
   properties. *)

open Ir
module B = Builder

let qcheck = QCheck_alcotest.to_alcotest

let contains ~sub s =
  let ls = String.length s and lb = String.length sub in
  let rec at i = i + lb <= ls && (String.sub s i lb = sub || at (i + 1)) in
  lb = 0 || at 0

let test_pp_class () =
  let c =
    Jclass.make ~super:(Some "p.Base") ~interfaces:[ "p.I" ] "p.C"
      ~fields:[ Jsig.field ~cls:"p.C" ~name:"f" ~ty:Types.Int ]
      ~methods:
        [ B.method_ ~cls:"p.C" ~name:"go" ~params:[ Types.string_ ]
            ~ret:Types.Void (fun mb ->
              ignore (B.const_str mb "x")) ]
  in
  let s = Fmt.str "%a" Pp.pp_class c in
  Alcotest.(check bool) "class line" true (contains ~sub:"class p.C extends p.Base" s);
  Alcotest.(check bool) "implements" true (contains ~sub:"implements p.I" s);
  Alcotest.(check bool) "field" true (contains ~sub:"<p.C: int f>" s);
  Alcotest.(check bool) "method subsig" true
    (contains ~sub:"void go(java.lang.String)" s);
  Alcotest.(check bool) "identity stmt printed" true
    (contains ~sub:":= @this: p.C" s)

let test_dispatch_interface () =
  let iface =
    { (Jclass.make "q.I") with
      Jclass.is_interface = true;
      methods = [ B.abstract_method ~cls:"q.I" ~name:"f" ~params:[] ~ret:Types.Void ] }
  in
  let mk name =
    Jclass.make ~interfaces:[ "q.I" ] name
      ~methods:
        [ B.method_ ~cls:name ~name:"f" ~params:[] ~ret:Types.Void (fun _ -> ()) ]
  in
  let p = Program.of_classes [ iface; mk "q.A"; mk "q.B" ] in
  let targets = Program.dispatch_targets p "q.I" "void f()" in
  Alcotest.(check (list string)) "both implementers" [ "q.A"; "q.B" ]
    (List.sort String.compare (List.map fst targets))

let test_builder_diamond () =
  (* hand-build an if/goto/phi diamond and check the analyses survive it *)
  let m =
    B.method_ ~access:B.static_access ~cls:"q.D" ~name:"pick"
      ~params:[ Types.Int ] ~ret:Types.string_ (fun mb ->
        let base = B.here mb in
        B.emit mb
          (Stmt.If (Expr.Gt, Value.Local (B.param mb 0),
                    Value.Const (Value.Int_c 0), base + 3));
        let a = B.const_str mb "AES/GCM/NoPadding" in
        B.emit mb (Stmt.Goto (base + 4));
        let b = B.const_str mb "AES/GCM/NoPadding" in
        let r = B.assign mb Types.string_ (Expr.Phi [ a; b ]) in
        B.return_val mb (Value.Local r))
  in
  let body = Option.get m.Jmethod.body in
  Alcotest.(check bool) "diamond emitted" true (Array.length body >= 6);
  (* the dex renderer handles If/Goto/Phi lines *)
  let klass = Jclass.make "q.D" ~methods:[ m ] in
  let dex = Dex.Dexfile.of_program (Program.of_classes [ klass ]) in
  let text = Dex.Dexfile.to_string dex in
  Alcotest.(check bool) "if rendered" true (contains ~sub:"if-gt" text);
  Alcotest.(check bool) "goto rendered" true (contains ~sub:"goto :goto_" text);
  Alcotest.(check bool) "phi rendered" true (contains ~sub:".phi" text)

let test_diamond_spec_still_detected () =
  (* a diamond where both branches produce the same (insecure) constant:
     the Phi join keeps the constant and the detector still fires *)
  let cls = "q.Dia" in
  let meth =
    B.method_ ~access:B.static_access ~cls ~name:"enc" ~params:[ Types.Int ]
      ~ret:Types.Void (fun mb ->
        let base = B.here mb in
        B.emit mb
          (Stmt.If (Expr.Gt, Value.Local (B.param mb 0),
                    Value.Const (Value.Int_c 0), base + 3));
        let a = B.const_str mb "AES/ECB/PKCS5Padding" in
        B.emit mb (Stmt.Goto (base + 4));
        let b = B.const_str mb "AES/ECB/PKCS5Padding" in
        let r = B.assign mb Types.string_ (Expr.Phi [ a; b ]) in
        ignore
          (B.invoke_ret mb ~kind:Expr.Static
             ~callee:Framework.Api.cipher_get_instance
             ~args:[ Value.Local r ] ()))
  in
  let act_cls = "q.DiaAct" in
  let act =
    Jclass.make ~super:(Some "android.app.Activity") act_cls
      ~methods:
        [ B.constructor ~cls:act_cls (fun mb ->
              B.invoke mb ~base:(B.this mb) ~kind:Expr.Special
                ~callee:
                  (Jsig.meth ~cls:"android.app.Activity" ~name:"<init>"
                     ~params:[] ~ret:Types.Void)
                ~args:[] ());
          B.method_ ~cls:act_cls ~name:"onCreate"
            ~params:[ Framework.Api.bundle_t ] ~ret:Types.Void (fun mb ->
              let k = B.const_int mb 1 in
              B.call_static mb
                ~callee:
                  (Jsig.meth ~cls ~name:"enc" ~params:[ Types.Int ]
                     ~ret:Types.Void)
                ~args:[ Value.Local k ]) ]
  in
  let program =
    Program.of_classes
      (Framework.Stubs.classes () @ [ Jclass.make cls ~methods:[ meth ]; act ])
  in
  let manifest =
    Manifest.App_manifest.make ~package:"q"
      ~components:
        [ Manifest.Component.make ~kind:Manifest.Component.Activity act_cls ]
  in
  let r =
    Backdroid.Driver.analyze ~dex:(Dex.Dexfile.of_program program) ~manifest ()
  in
  Alcotest.(check int) "phi-joined constant detected" 1
    (List.length (Backdroid.Driver.insecure_reports r))

let query_commands_injective =
  QCheck.Test.make ~name:"query commands are injective per constructor"
    ~count:100
    QCheck.(make Gen.(pair (string_size (int_range 1 20)) (string_size (int_range 1 20))))
    (fun (a, b) ->
       let open Bytesearch.Query in
       a = b
       || (to_command (invocation a) <> to_command (invocation b)
           && to_command (const_string a) <> to_command (const_string b)))

let histogram_total =
  QCheck.Test.make ~name:"histogram buckets sum to the sample count" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 30) (float_range 0.0 100.0))
    (fun xs ->
       let counts =
         Evalharness.Stats.histogram ~buckets:[ 10.0; 50.0; 90.0 ] xs
       in
       List.fold_left ( + ) 0 counts = List.length xs)

let cases =
  [ Alcotest.test_case "pp class output" `Quick test_pp_class;
    Alcotest.test_case "dispatch on interfaces" `Quick test_dispatch_interface;
    Alcotest.test_case "builder diamond renders" `Quick test_builder_diamond;
    Alcotest.test_case "diamond spec still detected" `Quick
      test_diamond_spec_still_detected ]

let prop_cases = List.map qcheck [ query_commands_injective; histogram_total ]

let suites = [ "misc.unit", cases; "misc.props", prop_cases ]
