examples/async_callbacks.mli:
