lib/ir/stmt.mli: Expr Format Jsig Value
