(** A minimal s-expression reader for the rule files.

    Atoms are bare tokens or double-quoted strings (with backslash escapes
    for quote, backslash, n, t); [;] starts a line comment.  Every node
    carries the
    source position where it began, so validation errors downstream can
    point at the offending form. *)

type pos = { line : int; col : int }

type t =
  | Atom of pos * string
  | List of pos * t list

type error = { pos : pos; msg : string }

let pos_of = function Atom (p, _) | List (p, _) -> p

let error_to_string { pos; msg } =
  Printf.sprintf "line %d, column %d: %s" pos.line pos.col msg

exception Fail of error

(* Character-level reader state.  Lines and columns are 1-based, as editors
   render them. *)
type reader = {
  src : string;
  mutable i : int;
  mutable line : int;
  mutable col : int;
}

let peek r = if r.i < String.length r.src then Some r.src.[r.i] else None

let advance r =
  (match peek r with
   | Some '\n' ->
     r.line <- r.line + 1;
     r.col <- 1
   | Some _ -> r.col <- r.col + 1
   | None -> ());
  r.i <- r.i + 1

let here r = { line = r.line; col = r.col }

let fail r msg = raise (Fail { pos = here r; msg })
let fail_at pos msg = raise (Fail { pos; msg })

let rec skip_blank r =
  match peek r with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance r;
    skip_blank r
  | Some ';' ->
    let rec to_eol () =
      match peek r with
      | Some '\n' | None -> ()
      | Some _ ->
        advance r;
        to_eol ()
    in
    to_eol ();
    skip_blank r
  | Some _ | None -> ()

let is_bare_char = function
  | ' ' | '\t' | '\r' | '\n' | '(' | ')' | '"' | ';' -> false
  | _ -> true

let read_quoted r =
  let start = here r in
  advance r;  (* opening quote *)
  let b = Buffer.create 16 in
  let rec loop () =
    match peek r with
    | None -> fail_at start "unterminated string literal"
    | Some '"' ->
      advance r;
      Buffer.contents b
    | Some '\\' ->
      advance r;
      (match peek r with
       | Some '"' -> Buffer.add_char b '"'
       | Some '\\' -> Buffer.add_char b '\\'
       | Some 'n' -> Buffer.add_char b '\n'
       | Some 't' -> Buffer.add_char b '\t'
       | Some c -> fail r (Printf.sprintf "unknown escape '\\%c'" c)
       | None -> fail_at start "unterminated string literal");
      advance r;
      loop ()
    | Some c ->
      advance r;
      Buffer.add_char b c;
      loop ()
  in
  Atom (start, loop ())

let read_bare r =
  let start = here r in
  let b = Buffer.create 16 in
  let rec loop () =
    match peek r with
    | Some c when is_bare_char c ->
      advance r;
      Buffer.add_char b c;
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  Atom (start, Buffer.contents b)

let rec read_form r =
  skip_blank r;
  match peek r with
  | None -> fail r "unexpected end of input"
  | Some '(' ->
    let start = here r in
    advance r;
    let items = ref [] in
    let rec loop () =
      skip_blank r;
      match peek r with
      | None -> fail_at start "unclosed '('"
      | Some ')' ->
        advance r;
        List (start, List.rev !items)
      | Some _ ->
        items := read_form r :: !items;
        loop ()
    in
    loop ()
  | Some ')' -> fail r "unmatched ')'"
  | Some '"' -> read_quoted r
  | Some _ -> read_bare r

(** Parse a whole source text as a sequence of top-level forms. *)
let parse_string src : (t list, error) result =
  let r = { src; i = 0; line = 1; col = 1 } in
  try
    let forms = ref [] in
    let rec loop () =
      skip_blank r;
      if peek r <> None then begin
        forms := read_form r :: !forms;
        loop ()
      end
    in
    loop ();
    Ok (List.rev !forms)
  with Fail e -> Error e
