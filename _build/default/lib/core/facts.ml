(** Dataflow facts for the forward constant and points-to propagation over
    the SSG (Sec. V-B).  [New_obj] and [Arr] carry the points-to information
    of Sec. V-B's NewObj / ArrayObj structures: a pointer to the constructor
    class plus a mutable member map, so every reference propagated along the
    flow paths shares one object. *)

type t =
  | Const_str of string
  | Const_int of int
  | New_obj of obj
  | Arr of arr
  | Static_ref of Ir.Jsig.field
      (** a framework constant field, e.g. ALLOW_ALL_HOSTNAME_VERIFIER *)
  | Framework_input  (** values handed in by the Android framework *)
  | Sym of string    (** symbolic expression over unresolved inputs *)
  | Unknown

and obj = {
  cls : string;
  members : (string, t) Hashtbl.t;
      (** instance fields (keyed by field signature) and Intent extras /
          builder parts (keyed by strings) *)
}

and arr = {
  elem : Ir.Types.t;
  cells : (int, t) Hashtbl.t;
}

let new_obj cls = New_obj { cls; members = Hashtbl.create 4 }
let new_arr elem = Arr { elem; cells = Hashtbl.create 4 }

let to_string = function
  | Const_str s -> Printf.sprintf "%S" s
  | Const_int i -> string_of_int i
  | New_obj o -> "new " ^ o.cls
  | Arr a -> Printf.sprintf "%s[]" (Ir.Types.to_string a.elem)
  | Static_ref f -> Ir.Jsig.field_to_string f
  | Framework_input -> "<framework>"
  | Sym s -> "<" ^ s ^ ">"
  | Unknown -> "<unknown>"

let pp ppf f = Fmt.string ppf (to_string f)

(** Bounded symbolic fact: symbolic expressions are truncated so abstract
    values (and the context keys derived from them) stay small — the usual
    bounded-depth expression abstraction. *)
let sym s =
  if String.length s <= 48 then Sym s else Sym (String.sub s 0 45 ^ "...")

(** Join for Phi nodes: equal facts survive, otherwise prefer the known
    one over Unknown, else go symbolic. *)
let join a b =
  match a, b with
  | Unknown, x | x, Unknown -> x
  | Const_str x, Const_str y when String.equal x y -> a
  | Const_int x, Const_int y when x = y -> a
  | New_obj x, New_obj y when x == y -> a
  | Static_ref x, Static_ref y when Ir.Jsig.field_equal x y -> a
  | _, _ -> sym (to_string a ^ " | " ^ to_string b)
