(** Parser for the dexdump-format plaintext emitted by {!module:Disasm}.

    This is the inverse direction of the preprocessing step: given raw
    disassembled text (ours, or in principle a real `dexdump -d` capture in
    the same shape), reconstruct the line structure — class and method
    ownership, instruction addresses, opcodes, registers and the symbolic
    operand each search targets.  The round-trip property
    [parse (render program) ≍ program structure] is checked by the test
    suite and pins down the text format the search engine depends on. *)

type operand =
    Meth_ref of Ir.Jsig.meth
  | Field_ref of Ir.Jsig.field
  | Class_ref of string
  | String_lit of string
  | Other_operand of string
type instr = {
  addr : int;
  opcode : string;
  registers : string list;
  operand : operand option;
}
type line =
    Class_header of string
  | Super_header of string
  | Interface_header of string
  | Field_header of Ir.Jsig.field
  | Method_header of Ir.Jsig.meth
  | Instruction of instr
  | Blank
exception Parse_error of string
val fail : ('a, unit, string, 'b) format4 -> 'a
val strip_quotes : string -> string
val starts_with : prefix:string -> string -> bool

(** Split "op regs..., operand" after the address tag. *)
val parse_instr_text : int -> string -> instr

(** Parse one plaintext line. *)
val parse_line : string -> line
type parsed = {
  lines : (line * Ir.Jsig.meth option * string option) array;
  classes : string list;
  methods : Ir.Jsig.meth list;
}

(** Parse a whole plaintext, reconstructing class / method ownership. *)
val parse_text : string -> parsed

(** Invocation call sites found in raw text: (caller, callee, address). *)
val invocations : parsed -> (Ir.Jsig.meth * Ir.Jsig.meth * int) list
