(** The adjusted backward slicing (Sec. V-A): starting at a sink API call,
    taint the security-relevant parameter and scan method bodies backwards,
    crossing method boundaries through the bytecode searches of Sec. IV and
    recording every visited statement and inter-procedural relationship into
    the SSG.

    Taints cover locals, instance fields (tainting the class object along
    with the field, so aliases and method boundaries are survived), Intent
    extras (keyed like fields) and static fields (a global set).  Contained
    methods — constructors writing tainted fields, and calls whose return
    value is tainted — are analysed by recursive sub-slices whose residual
    taints are mapped back to the call site.

    Caller queries go through the {!Resolver} broker; state, caches and the
    per-sink budget live in the {!Context}. *)

(** Slice one sink API call occurrence, producing its SSG and the typed
    budget outcome.  [shared] carries the app-wide state of the sink group —
    the engine, the sink-API-call reachability cache with its counters
    (Sec. IV-F), the loop statistics and the trace sink; [budget] (default
    {!Context.default_budget}) bounds this one slice, and exhausting it
    yields a [Partial] outcome instead of silent truncation. *)
val slice :
  shared:Context.shared ->
  ?budget:Context.budget ->
  sink:Framework.Sinks.t ->
  sink_meth:Ir.Jsig.meth ->
  sink_site:int ->
  unit ->
  Ssg.t * Context.outcome

(** {!slice} plus the {!Provenance} ledger of the derivation (queries per
    category, strategies taken, budget spent, SSG size, wall-µs). *)
val slice_full :
  shared:Context.shared ->
  ?budget:Context.budget ->
  sink:Framework.Sinks.t ->
  sink_meth:Ir.Jsig.meth ->
  sink_site:int ->
  unit ->
  Ssg.t * Context.outcome * Provenance.t
